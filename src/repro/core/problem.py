"""The co-scheduling problem bundle.

:class:`CoSchedulingProblem` ties a workload, a machine/cluster, a cache
degradation model and (optionally) a communication model into the single
callable every solver uses:

* ``degradation(pid, coset)`` — Eq. 1 for serial/PE processes, Eq. 9
  (cache degradation + normalized communication time) for PC processes;
* ``node_weight(node)`` — the graph-node weight of Fig. 3: the total
  degradation of the ``u`` processes placed together on one machine.

All values are memoized; degradations are pure functions of ``(pid, coset)``
so solvers can share one problem instance.
"""

from __future__ import annotations

import json
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..comm.model import CommunicationModel
from ..perf.counters import PerfCounters
from .constraints import ScenarioConstraint
from .degradation import CacheDegradationModel
from .jobs import JobKind, Workload
from .machine import ClusterSpec, MachineSpec

__all__ = ["CoSchedulingProblem"]


class CoSchedulingProblem:
    """A fully-specified instance: who is scheduled, where, and at what cost.

    Parameters
    ----------
    workload:
        The processes to place (already padded to a multiple of ``u``).
    cluster:
        Machine type (``u`` cores) and interconnect bandwidth.
    degradation_model:
        Cache-contention degradations (Eq. 1).
    comm_model:
        Communication times for PC processes (Eq. 10-11).  ``None`` means no
        PC jobs, or treat them as PE (the paper's OA*-PE ablation does this
        deliberately).
    constraints:
        Scenario constraints (:mod:`repro.core.constraints`) whose soft
        penalties are added per machine placement.  Requires a serial-only,
        unpadded, communication-free workload.
    machine_scaling:
        Per-machine degradation/speed scaling hook: either a callable
        ``MachineSpec -> float`` or a sequence of one factor per machine.
        Machine ``k``'s group weight is ``machine_scaling[k] *
        node_weight(group)`` — e.g. clock-ratio scaling for clusters whose
        degradation model was calibrated on the reference machine.
    """

    def __init__(
        self,
        workload: Workload,
        cluster: ClusterSpec,
        degradation_model: CacheDegradationModel,
        comm_model: Optional[CommunicationModel] = None,
        node_extra_cost: Optional[object] = None,
        constraints: Sequence[ScenarioConstraint] = (),
        machine_scaling: Union[
            None, Callable[[MachineSpec], float], Sequence[float]
        ] = None,
    ):
        if cluster.machines:
            capacities = cluster.capacities
            total = sum(capacities)
            if total != workload.n:
                roster = ", ".join(
                    f"machine {k}: {m.cores} cores"
                    for k, m in enumerate(cluster.machines)
                )
                raise ValueError(
                    f"workload has {workload.n} processes but the cluster "
                    f"roster provides {total} cores ({roster}); adjust the "
                    f"roster so its capacities sum to {workload.n}, or pad "
                    f"the workload with imaginary processes "
                    f"(Workload(jobs, cores_per_machine=...) pads "
                    f"automatically for homogeneous clusters)"
                )
            self.machines: Tuple[MachineSpec, ...] = cluster.machines
            self.capacities: Tuple[int, ...] = capacities
        else:
            u = cluster.cores
            if workload.n % u != 0:
                raise ValueError(
                    f"workload has {workload.n} processes, not a multiple of "
                    f"u={u}; either pad the workload with imaginary "
                    f"processes (Workload(jobs, cores_per_machine={u}) pads "
                    f"automatically) or give the cluster an explicit "
                    f"machines roster whose capacities sum to {workload.n} "
                    f"(ClusterSpec.of_machines([...]))"
                )
            m = workload.n // u
            self.machines = (cluster.machine,) * m
            self.capacities = (u,) * m
        self.workload = workload
        self.cluster = cluster
        self.model = degradation_model
        self.comm = comm_model
        self.constraints: Tuple[ScenarioConstraint, ...] = tuple(constraints)
        if machine_scaling is None:
            scale: Tuple[float, ...] = (1.0,) * len(self.machines)
        elif callable(machine_scaling):
            scale = tuple(float(machine_scaling(m)) for m in self.machines)
        else:
            scale = tuple(float(s) for s in machine_scaling)
            if len(scale) != len(self.machines):
                raise ValueError(
                    f"machine_scaling has {len(scale)} factors but the "
                    f"cluster has {len(self.machines)} machines"
                )
        if any(s <= 0 for s in scale):
            raise ValueError("machine scaling factors must be positive")
        #: Per-machine multiplier applied to that machine's group weight.
        self.machine_scale: Tuple[float, ...] = scale
        self._heterogeneous = (
            len(set(self.capacities)) > 1
            or len(set(self.machines)) > 1
            or len(set(scale)) > 1
        )
        self._machine_order: Optional[Tuple[int, ...]] = None
        self._machine_node_cache: Dict[Tuple[int, Tuple[int, ...]], float] = {}
        #: Optional callable ``node -> float`` adding a non-negative cost to
        #: every machine grouping beyond its members' degradations.  Used by
        #: extensions (e.g. VM migration penalties); the objective, all
        #: solvers and the IP formulation include it uniformly, and h(v)
        #: ignores it (costs are >= 0, so heuristics stay admissible).
        self.node_extra_cost = node_extra_cost
        self._deg_cache: Dict[Tuple[int, FrozenSet[int]], float] = {}
        self._node_cache: Dict[Tuple[int, ...], float] = {}
        self._extra_cache: Dict[Tuple[int, ...], float] = {}
        self.stats = {"degradation_evals": 0, "node_evals": 0}
        #: Performance instrumentation shared by every layer touching this
        #: problem (weight kernels, successor generation, search phases).
        self.counters = PerfCounters()
        if self._heterogeneous or self.constraints:
            self._validate_scenario()

    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        return self.workload.n

    @property
    def u(self) -> int:
        """The uniform core count for homogeneous clusters; the *largest*
        machine capacity for heterogeneous rosters (the group-width
        ceiling — use :attr:`capacities` for per-machine sizes)."""
        return max(self.capacities)

    @property
    def n_machines(self) -> int:
        return len(self.capacities)

    # ------------------------------------------------------------------ #
    # Scenario surface: heterogeneity + constraints
    # ------------------------------------------------------------------ #

    def _validate_scenario(self) -> None:
        if self.comm is not None:
            raise ValueError(
                "heterogeneous/constrained problems do not support a "
                "communication model (Eq. 10 assumes identical machines)"
            )
        if self.node_extra_cost is not None:
            raise ValueError(
                "heterogeneous/constrained problems do not support "
                "node_extra_cost; express placement costs as a "
                "ScenarioConstraint instead"
            )
        if self.workload.n_imaginary:
            raise ValueError(
                "heterogeneous/constrained problems do not support "
                "imaginary padding; give the cluster a roster whose "
                "capacities sum to the real process count"
            )
        for pid in range(self.n):
            if self.workload.kind_of(pid) is not JobKind.SERIAL:
                raise ValueError(
                    "heterogeneous/constrained problems support serial "
                    f"workloads only (process {pid} is parallel)"
                )
        for c in self.constraints:
            c.validate_for(self.n, self.n_machines)

    def required_capabilities(self) -> FrozenSet[str]:
        """Capability flags a solver must declare to handle this instance:
        ``heterogeneous`` when machines differ (cores, spec or scaling),
        ``constraints`` when scenario constraints are attached.  Empty for
        the paper's homogeneous, unconstrained model."""
        caps = set()
        if self._heterogeneous:
            caps.add("heterogeneous")
        if self.constraints:
            caps.add("constraints")
        return frozenset(caps)

    @property
    def is_scenario(self) -> bool:
        """True when this instance needs scenario-capable solvers."""
        return self._heterogeneous or bool(self.constraints)

    def machine_identity(self, k: int) -> Tuple:
        """Hashable identity of machine ``k``: spec geometry + scaling +
        every constraint's per-machine key.  Machines with equal identities
        are interchangeable, so solvers dedupe permutations of them."""
        m = self.machines[k]
        return (
            m.cores,
            m.shared_cache.size_bytes,
            m.shared_cache.associativity,
            m.shared_cache.line_bytes,
            m.clock_hz,
            m.miss_penalty_cycles,
            self.machine_scale[k],
        ) + tuple(c.machine_key(k) for c in self.constraints)

    def canonical_machine_order(self) -> Tuple[int, ...]:
        """Machine indices in canonical slot order: capacity descending,
        then identity, then index — so identical machines sit in
        consecutive runs and symmetric placements can be deduped."""
        if self._machine_order is None:
            self._machine_order = tuple(sorted(
                range(self.n_machines),
                key=lambda k: (
                    -self.capacities[k],
                    json.dumps(self.machine_identity(k)),
                    k,
                ),
            ))
        return self._machine_order

    def slot_plan(self) -> List[Tuple[int, int, bool]]:
        """The canonical slot sequence as ``(machine_idx, capacity,
        same_identity_as_previous_slot)`` triples."""
        order = self.canonical_machine_order()
        plan: List[Tuple[int, int, bool]] = []
        prev_identity = None
        for k in order:
            identity = self.machine_identity(k)
            plan.append((k, self.capacities[k], identity == prev_identity))
            prev_identity = identity
        return plan

    def machine_node_weight(self, k: int, node: Tuple[int, ...]) -> float:
        """Weight of placing co-run group ``node`` on machine ``k``:
        the machine's scaling factor times the group's degradation sum,
        plus every constraint's penalty for that placement."""
        key = (k, tuple(sorted(node)))
        hit = self._machine_node_cache.get(key)
        if hit is not None:
            return hit
        w = self.machine_scale[k] * self.node_weight(key[1])
        for c in self.constraints:
            p = c.penalty(k, key[1])
            if p < 0:
                raise ValueError(
                    f"constraint {type(c).__name__} returned a negative "
                    f"penalty {p} for machine {k}"
                )
            w += p
        self._machine_node_cache[key] = w
        return w

    def make_schedule(self, groups: Sequence[Sequence[int]]) -> "CoSchedule":
        """Build a :class:`CoSchedule` from machine-indexed groups
        (``groups[k]`` runs on machine ``k``).

        For the paper's homogeneous model this is the classic canonical
        form (machine identity is irrelevant).  For scenario problems the
        machine axis is meaningful, so groups keep their machine index and
        only *interchangeable* machines (equal :meth:`machine_identity`)
        are canonicalized among themselves, by smallest member.
        """
        from .schedule import CoSchedule

        if not self.is_scenario:
            return CoSchedule.from_groups(groups, u=self.u, n=self.n)
        groups = [tuple(sorted(g)) for g in groups]
        if len(groups) != self.n_machines:
            raise ValueError(
                f"expected {self.n_machines} machine groups, got {len(groups)}"
            )
        classes: Dict[Tuple, List[int]] = {}
        for k in range(self.n_machines):
            classes.setdefault(self.machine_identity(k), []).append(k)
        final: List[Tuple[int, ...]] = list(groups)
        for indices in classes.values():
            if len(indices) == 1:
                continue
            owned = sorted((groups[k] for k in indices), key=lambda g: g[0])
            for k, g in zip(sorted(indices), owned):
                final[k] = g
        return CoSchedule.from_machine_groups(final, self.capacities)

    # ------------------------------------------------------------------ #

    def degradation(self, pid: int, coset: Iterable[int]) -> float:
        """``d_{pid, coset}`` — communication-combined for PC processes (Eq. 9)."""
        key = (pid, frozenset(coset) - {pid})
        hit = self._deg_cache.get(key)
        if hit is not None:
            return hit
        self.stats["degradation_evals"] += 1
        if self.workload.is_imaginary(pid):
            d = 0.0
        else:
            # Imaginary co-runners exert no contention: filter them out.
            real = frozenset(
                q for q in key[1] if not self.workload.is_imaginary(q)
            )
            d = self.model.cache_degradation(pid, real)
            if self.comm is not None and self.comm.is_communicating(pid):
                ct = self.model.single_time(pid)
                d += self.comm.comm_time(pid, key[1]) / ct
        self._deg_cache[key] = d
        return d

    def node_weight(self, node: Tuple[int, ...]) -> float:
        """Total degradation of the processes co-located in ``node``,
        plus any node-level extra cost."""
        key = tuple(sorted(node))
        hit = self._node_cache.get(key)
        if hit is not None:
            return hit
        self.stats["node_evals"] += 1
        self.counters.incr("node_weight_scalar")
        members = frozenset(key)
        w = sum(self.degradation(pid, members - {pid}) for pid in key)
        w += self.extra_cost(key)
        self._node_cache[key] = w
        return w

    def supports_batch_weights(self) -> bool:
        """True when :meth:`node_weights_batch` runs the model's vectorized
        kernel.  Requires a batch-capable model and no communication model —
        Eq. 9's per-pid communication terms stay on the scalar path — and no
        imaginary padding (the scalar path filters imaginary co-runners,
        which the model kernels don't see)."""
        return (
            self.comm is None
            and self.workload.n_imaginary == 0
            and self.model.supports_batch()
        )

    def node_weights_batch(
        self,
        nodes: Sequence[Tuple[int, ...]],
        memo: bool = True,
    ) -> np.ndarray:
        """Node weights for many nodes at once.

        Agrees with :meth:`node_weight` to floating-point round-off on every
        node.  When :meth:`supports_batch_weights` holds, misses are scored
        by one call to the model's vectorized ``node_weights_batch`` kernel;
        otherwise each miss falls back to the scalar path.  ``memo=True``
        (default) consults and fills the node-weight memo — pass ``False``
        for huge throw-away frontiers where dict traffic outweighs reuse.

        ``nodes`` rows must be sorted pid tuples (every enumerator in
        :mod:`repro.graph` produces them sorted); unsorted rows would only
        fragment the memo, not change the weights.
        """
        nodes = list(nodes)
        out = np.empty(len(nodes), dtype=float)
        if not self.supports_batch_weights():
            for r, node in enumerate(nodes):
                out[r] = self.node_weight(node)
            self.counters.observe_batch("node_weights_scalar_fallback", len(nodes))
            return out
        if memo:
            miss_rows: list = []
            miss_idx: list = []
            cache = self._node_cache
            for r, node in enumerate(nodes):
                hit = cache.get(node)
                if hit is None:
                    miss_idx.append(r)
                    miss_rows.append(node)
                else:
                    out[r] = hit
            self.counters.incr("node_memo_hits", len(nodes) - len(miss_rows))
        else:
            miss_rows = nodes
            miss_idx = list(range(len(nodes)))
        if miss_rows:
            w = self.model.node_weights_batch(
                np.asarray(miss_rows, dtype=np.intp)
            )
            if self.node_extra_cost is not None:
                w = w + np.asarray(
                    [self.extra_cost(node) for node in miss_rows], dtype=float
                )
            self.stats["node_evals"] += len(miss_rows)
            self.counters.incr("node_weight_batched", len(miss_rows))
            if memo:
                for r, node, wv in zip(miss_idx, miss_rows, w):
                    val = float(wv)
                    out[r] = val
                    cache[node] = val
            else:
                out[miss_idx] = w
        self.counters.observe_batch("node_weights_batch", len(nodes))
        return out

    def extra_cost(self, node: Tuple[int, ...]) -> float:
        """Node-level extra cost (0 unless an extension installs one)."""
        if self.node_extra_cost is None:
            return 0.0
        key = tuple(sorted(node))
        hit = self._extra_cache.get(key)
        if hit is None:
            hit = float(self.node_extra_cost(key))
            if hit < 0:
                raise ValueError("node extra costs must be non-negative")
            self._extra_cache[key] = hit
        return hit

    def node_h_weight(self, node: Tuple[int, ...], parallel_as: str = "zero") -> float:
        """Node weight for h(v) estimation.

        ``parallel_as="zero"`` counts only serial processes (admissible: a
        parallel process's degradation may be absorbed into its job's max,
        contributing nothing beyond what g already counts).
        ``parallel_as="sum"`` reproduces the paper's literal node weight.
        """
        if parallel_as == "sum":
            return self.node_weight(node)
        if parallel_as != "zero":
            raise ValueError(f"unknown parallel_as={parallel_as!r}")
        members = frozenset(node)
        w = 0.0
        for pid in node:
            if self.workload.kind_of(pid) is JobKind.SERIAL:
                w += self.degradation(pid, members - {pid})
        return w

    # ------------------------------------------------------------------ #

    def min_process_degradation(self, pid: int) -> float:
        """Admissible floor on ``d_{pid,S}`` over every possible coset.

        Cache part from the model's :meth:`min_degradation` (best-case
        co-runners, globally relaxed), plus — for PC processes — the
        communication a u-core machine cannot avoid (at most ``u - 1``
        neighbours can be co-located).
        """
        if self.workload.is_imaginary(pid):
            return 0.0
        universe = [
            q for q in range(self.n)
            if q != pid and not self.workload.is_imaginary(q)
        ]
        if self.is_scenario:
            # Machines differ in capacity, so the coset size depends on
            # the (unknown) placement: min over every distinct capacity.
            # Constraint penalties are >= 0 and scaling is handled by the
            # caller, so this floor stays admissible.
            sizes = sorted({min(c - 1, len(universe)) for c in self.capacities})
            return min(
                self.model.min_degradation(pid, universe, k) for k in sizes
            )
        # Imaginary pads shrink the real co-runner count, and degradation
        # need not be monotone in coset size, so take the min over every
        # feasible real-coset size.
        k_hi = min(self.u - 1, len(universe))
        k_lo = max(0, self.u - 1 - self.workload.n_imaginary)
        d = min(
            self.model.min_degradation(pid, universe, k)
            for k in range(k_lo, k_hi + 1)
        )
        if self.comm is not None and self.comm.is_communicating(pid):
            ct = self.model.single_time(pid)
            d += self.comm.min_comm_time(pid, self.u - 1) / ct
        return d

    def parallel_job_of(self, pid: int) -> Optional[int]:
        """Owning parallel job id of ``pid``, or None for serial/imaginary."""
        job = self.workload.job_of(pid)
        if job is None or not job.is_parallel:
            return None
        return job.job_id

    def seed_node_weight(self, node: Tuple[int, ...], weight: float) -> None:
        """Pre-populate the node-weight memo with a known value.

        Incremental re-solves (:mod:`repro.online`) carry machine groups
        whose weights were already computed against an identical model in a
        prior problem instance; seeding them here lets the repair path skip
        re-evaluating untouched machines.  Only safe when the degradation of
        ``node``'s members depends solely on their own machine's coset
        (serial, no-communication workloads) — the caller owns that
        invariant.
        """
        self._node_cache[tuple(sorted(node))] = float(weight)

    def clear_caches(self) -> None:
        """Drop every memo layer: the problem-level dicts AND the
        degradation model's internal caches (via the model's own
        ``clear_caches`` hook), so repeated solves on a mutated model can't
        serve stale values."""
        self._deg_cache.clear()
        self._node_cache.clear()
        self._extra_cache.clear()
        self._machine_node_cache.clear()
        self.model.clear_caches()
        self.stats = {"degradation_evals": 0, "node_evals": 0}
        self.counters.reset()
