"""Objective evaluation (Eq. 6, 12, 13 of the paper).

The total degradation of a complete co-schedule is

    Σ_{parallel jobs δj} max_{p_i ∈ δj} d_{i,S_i}  +  Σ_{serial p_i} d_{i,S_i}

Serial-only workloads reduce to the plain sum (Eq. 12).  ``d`` is Eq. 1 for
serial/PE processes and the communication-combined Eq. 9 for PC processes —
the distinction lives in :class:`~repro.core.problem.CoSchedulingProblem`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .jobs import JobKind, Workload
from .problem import CoSchedulingProblem
from .schedule import CoSchedule

__all__ = ["ScheduleEvaluation", "evaluate_schedule", "partial_distance"]


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Full breakdown of a schedule's quality.

    ``objective`` is the paper's total degradation (Eq. 6/13).
    ``job_degradations`` maps job id to the job's degradation — the max over
    its processes for parallel jobs, the process's own value for serial jobs.
    ``process_degradations`` maps pid to ``d_{i,S_i}`` (imaginary pads omitted).
    """

    objective: float
    job_degradations: Dict[int, float] = field(default_factory=dict)
    process_degradations: Dict[int, float] = field(default_factory=dict)

    @property
    def average_job_degradation(self) -> float:
        """The per-job average the paper's tables report as "Average Degradation"."""
        if not self.job_degradations:
            return 0.0
        return sum(self.job_degradations.values()) / len(self.job_degradations)

    @property
    def max_job_degradation(self) -> float:
        return max(self.job_degradations.values(), default=0.0)


def evaluate_schedule(
    problem: CoSchedulingProblem, schedule: CoSchedule
) -> ScheduleEvaluation:
    """Evaluate a complete schedule under the problem's degradation model.

    Scenario problems (heterogeneous rosters and/or constraints) require a
    machine-indexed schedule carrying matching ``capacities``; machine
    ``k``'s group weight is scaled by the machine's factor and constraint
    penalties are added to the objective.
    """
    wl: Workload = problem.workload
    if problem.is_scenario:
        return _evaluate_scenario(problem, schedule)
    if schedule.capacities is not None:
        raise ValueError(
            "machine-indexed schedule (capacities set) given for a "
            "homogeneous, unconstrained problem"
        )
    if schedule.n != wl.n or schedule.u != problem.u:
        raise ValueError(
            f"schedule shape (n={schedule.n}, u={schedule.u}) does not match "
            f"problem (n={wl.n}, u={problem.u})"
        )
    proc_d: Dict[int, float] = {}
    job_d: Dict[int, float] = {}
    extra = 0.0
    for group in schedule.groups:
        members = frozenset(group)
        extra += problem.extra_cost(group)
        for pid in group:
            if wl.is_imaginary(pid):
                continue
            d = problem.degradation(pid, members - {pid})
            proc_d[pid] = d
            job = wl.job_of(pid)
            assert job is not None
            if job.is_parallel:
                job_d[job.job_id] = max(job_d.get(job.job_id, 0.0), d)
            else:
                job_d[job.job_id] = d
    objective = sum(job_d.values()) + extra
    return ScheduleEvaluation(
        objective=objective,
        job_degradations=job_d,
        process_degradations=proc_d,
    )


def _evaluate_scenario(
    problem: CoSchedulingProblem, schedule: CoSchedule
) -> ScheduleEvaluation:
    """Machine-indexed evaluation: scaled degradations + constraint
    penalties (scenario problems are serial-only and unpadded)."""
    wl: Workload = problem.workload
    if schedule.capacities != problem.capacities:
        raise ValueError(
            f"schedule capacities {schedule.capacities} do not match the "
            f"problem's machine roster {problem.capacities}; build the "
            f"schedule with problem.make_schedule(machine_groups)"
        )
    proc_d: Dict[int, float] = {}
    job_d: Dict[int, float] = {}
    objective = 0.0
    for k, group in enumerate(schedule.groups):
        members = frozenset(group)
        scale = problem.machine_scale[k]
        for pid in group:
            d = scale * problem.degradation(pid, members - {pid})
            proc_d[pid] = d
            job = wl.job_of(pid)
            assert job is not None
            job_d[job.job_id] = d
            objective += d
        for c in problem.constraints:
            objective += c.penalty(k, group)
    return ScheduleEvaluation(
        objective=objective,
        job_degradations=job_d,
        process_degradations=proc_d,
    )


def partial_distance(
    problem: CoSchedulingProblem,
    nodes: Tuple[Tuple[int, ...], ...],
) -> float:
    """Distance of a (possibly partial) path — Eq. 13 over its nodes.

    Serial processes contribute their degradations; each parallel job
    contributes the max over its *scheduled-so-far* processes.  Used by tests
    to cross-check the incremental g-value bookkeeping inside the A* solvers.
    """
    wl = problem.workload
    serial_sum = 0.0
    par_max: Dict[int, float] = {}
    for group in nodes:
        members = frozenset(group)
        serial_sum += problem.extra_cost(group)
        for pid in group:
            if wl.is_imaginary(pid):
                continue
            d = problem.degradation(pid, members - {pid})
            job = wl.job_of(pid)
            assert job is not None
            if job.kind is JobKind.SERIAL:
                serial_sum += d
            else:
                par_max[job.job_id] = max(par_max.get(job.job_id, 0.0), d)
    return serial_sum + sum(par_max.values())
