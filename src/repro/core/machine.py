"""Machine and cluster specifications.

The paper evaluates on three machine types; we model exactly the parameters
its prediction pipeline consumes (Eq. 14-15): core count, shared-cache
geometry, clock rate and the miss penalty, plus the cluster interconnect
bandwidth ``B`` used by the communication model (Eq. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of the cache level shared between co-running processes."""

    size_bytes: int
    associativity: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache parameters must be positive")
        if self.size_bytes % (self.associativity * self.line_bytes) != 0:
            raise ValueError(
                "cache size must be a multiple of associativity * line size"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_bytes)

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class MachineSpec:
    """One multicore machine: ``cores`` processes co-run sharing ``shared_cache``.

    ``clock_hz`` and ``miss_penalty_cycles`` feed the CPU-time model
    (Eq. 14-15): ``CPUTime = (cpu_cycles + misses * penalty) / clock``.
    """

    name: str
    cores: int
    shared_cache: CacheSpec
    clock_hz: float
    miss_penalty_cycles: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("machine needs >= 1 core")
        if self.clock_hz <= 0 or self.miss_penalty_cycles < 0:
            raise ValueError("clock must be positive, miss penalty non-negative")


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of machines linked by a network.

    Two construction modes:

    * **homogeneous** (the paper's model, and the default): ``machine`` is
      the template every machine in the cluster instantiates — the machine
      supply is unbounded and the workload size picks ``n/u`` of them;
    * **heterogeneous**: an explicit ``machines`` roster (possibly
      differing in ``cores``, ``clock_hz`` or cache geometry).  ``machine``
      then serves as the *reference* machine — the one degradation models
      are calibrated against (see ``docs/SCENARIOS.md``); use
      :meth:`of_machines` to pick it automatically.

    Roster order is identity: ``machines[k]`` *is* machine ``k`` for
    schedules, constraints and codecs, so the order is never silently
    reshuffled.

    ``bandwidth_bytes_per_s`` is ``B`` in Eq. 10 — the paper notes the
    inter-machine bandwidth in a cluster is uniform (10 GbE in their testbed).
    """

    machine: MachineSpec
    bandwidth_bytes_per_s: float = 10e9 / 8  # 10 Gigabit Ethernet
    machines: Tuple[MachineSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.machines:
            object.__setattr__(self, "machines", tuple(self.machines))
            for m in self.machines:
                if not isinstance(m, MachineSpec):
                    raise ValueError(
                        f"machines roster entries must be MachineSpec, "
                        f"got {type(m).__name__}"
                    )

    @classmethod
    def of_machines(
        cls,
        machines: Iterable[MachineSpec],
        bandwidth_bytes_per_s: float = 10e9 / 8,
    ) -> "ClusterSpec":
        """An explicit-roster cluster; the largest machine (most cores,
        first on ties) becomes the reference ``machine``."""
        roster = tuple(machines)
        if not roster:
            raise ValueError("machines roster must not be empty")
        reference = max(roster, key=lambda m: m.cores)
        return cls(machine=reference,
                   bandwidth_bytes_per_s=bandwidth_bytes_per_s,
                   machines=roster)

    @property
    def cores(self) -> int:
        """The uniform core count — raises for rosters that mix core
        counts (use :attr:`capacities` there)."""
        if self.machines:
            counts = {m.cores for m in self.machines}
            if len(counts) > 1:
                raise ValueError(
                    "heterogeneous cluster has no single core count; "
                    f"capacities are {self.capacities}"
                )
            return counts.pop()
        return self.machine.cores

    @property
    def capacities(self) -> Tuple[int, ...]:
        """Per-machine core counts of the explicit roster (empty for the
        homogeneous template mode, where the machine supply is unbounded)."""
        return tuple(m.cores for m in self.machines)

    @property
    def is_heterogeneous(self) -> bool:
        """True when an explicit roster mixes machine specs."""
        return bool(self.machines) and len(set(self.machines)) > 1


# ---------------------------------------------------------------------- #
# The paper's three machine types (Section V)
# ---------------------------------------------------------------------- #

#: Intel Core 2 Duo: per-core 32KB L1, shared 4MB 16-way L2.
DUAL_CORE = MachineSpec(
    name="dual-core (Core 2 Duo, 4MB 16-way shared L2)",
    cores=2,
    shared_cache=CacheSpec(size_bytes=4 * 1024 * 1024, associativity=16),
    clock_hz=2.4e9,
    miss_penalty_cycles=200.0,
)

#: Intel Core i7-2600: per-core L1/L2, shared 8MB 16-way L3.
QUAD_CORE = MachineSpec(
    name="quad-core (i7-2600, 8MB 16-way shared L3)",
    cores=4,
    shared_cache=CacheSpec(size_bytes=8 * 1024 * 1024, associativity=16),
    clock_hz=3.4e9,
    miss_penalty_cycles=250.0,
)

#: Intel Xeon E5-2450L: per-core L1/L2, shared 20MB 16-way L3 over 8 cores.
EIGHT_CORE = MachineSpec(
    name="8-core (Xeon E5-2450L, 20MB 16-way shared L3)",
    cores=8,
    shared_cache=CacheSpec(
        size_bytes=20 * 1024 * 1024, associativity=16, line_bytes=64
    ),
    clock_hz=1.8e9,
    miss_penalty_cycles=280.0,
)

#: 10 GbE clusters of each machine type, as in the paper's testbed.
DUAL_CORE_CLUSTER = ClusterSpec(machine=DUAL_CORE)
QUAD_CORE_CLUSTER = ClusterSpec(machine=QUAD_CORE)
EIGHT_CORE_CLUSTER = ClusterSpec(machine=EIGHT_CORE)

MACHINES = {
    "dual": DUAL_CORE,
    "quad": QUAD_CORE,
    "eight": EIGHT_CORE,
}

CLUSTERS = {
    "dual": DUAL_CORE_CLUSTER,
    "quad": QUAD_CORE_CLUSTER,
    "eight": EIGHT_CORE_CLUSTER,
}
