"""Co-schedule representation and validation.

A co-schedule partitions the ``n`` processes into ``m = n/u`` machines of
``u`` cores.  Machines are identical, so a schedule is canonically a set of
u-cardinality process groups; we normalize each group ascending and order
groups by their smallest member — exactly the node coding of the paper's
co-scheduling graph, so a schedule *is* a valid path's node sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .jobs import Workload

__all__ = ["CoSchedule", "validate_groups"]


def validate_groups(
    groups: Sequence[Sequence[int]],
    n: int,
    u: int,
    capacities: Optional[Sequence[int]] = None,
) -> None:
    """Raise ``ValueError`` unless ``groups`` is a partition of ``0..n-1``.

    Homogeneous (``capacities=None``): ``n/u`` groups of exactly ``u``.
    Heterogeneous: one group per machine, ``len(groups[k]) ==
    capacities[k]``.
    """
    if capacities is not None:
        if len(groups) != len(capacities):
            raise ValueError(
                f"expected {len(capacities)} machine groups, got {len(groups)}"
            )
        if sum(capacities) != n:
            raise ValueError(
                f"capacities {tuple(capacities)} sum to {sum(capacities)}, "
                f"not n={n}"
            )
    elif n % u != 0:
        raise ValueError(f"n={n} not divisible by u={u} (pad the workload)")
    elif len(groups) != n // u:
        raise ValueError(f"expected {n // u} groups, got {len(groups)}")
    seen = set()
    for k, g in enumerate(groups):
        cap = u if capacities is None else capacities[k]
        if len(g) != cap:
            raise ValueError(
                f"group {tuple(g)} has {len(g)} processes, expected {cap}"
            )
        for pid in g:
            if not 0 <= pid < n:
                raise ValueError(f"process id {pid} out of range 0..{n - 1}")
            if pid in seen:
                raise ValueError(f"process {pid} appears in more than one group")
            seen.add(pid)
    # group sizes sum to n and no duplicates => full coverage.


@dataclass(frozen=True)
class CoSchedule:
    """An immutable, canonicalized co-schedule.

    Homogeneous (``capacities is None``, the paper's model): ``groups[k]``
    is the ascending tuple of process ids on machine ``k``; groups are
    ordered by smallest member, so equality between schedules is semantic
    (machine identities don't matter).

    Heterogeneous (``capacities`` set): machine identity matters, so
    ``groups[k]`` stays bound to machine ``k`` of the cluster roster and
    ``len(groups[k]) == capacities[k]``.  Canonicalization among
    *interchangeable* machines is the problem's job
    (:meth:`repro.core.problem.CoSchedulingProblem.make_schedule`), because
    only the problem knows which machines share an identity.
    """

    groups: Tuple[Tuple[int, ...], ...]
    u: int
    capacities: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_groups(cls, groups: Iterable[Iterable[int]], u: int,
                    n: int | None = None) -> "CoSchedule":
        canon = tuple(sorted((tuple(sorted(g)) for g in groups), key=lambda g: g[0]))
        total = sum(len(g) for g in canon)
        validate_groups(canon, n if n is not None else total, u)
        return cls(groups=canon, u=u)

    @classmethod
    def from_machine_groups(
        cls,
        groups: Sequence[Sequence[int]],
        capacities: Sequence[int],
    ) -> "CoSchedule":
        """Build a heterogeneous schedule: ``groups[k]`` (sorted within the
        group, machine order preserved) runs on machine ``k`` with
        ``capacities[k]`` cores."""
        caps = tuple(int(c) for c in capacities)
        canon = tuple(tuple(sorted(g)) for g in groups)
        validate_groups(canon, sum(caps), max(caps), capacities=caps)
        return cls(groups=canon, u=max(caps), capacities=caps)

    @classmethod
    def from_assignment(cls, machine_of: Sequence[int], u: int) -> "CoSchedule":
        """Build from a per-process machine index vector."""
        buckets: dict[int, List[int]] = {}
        for pid, mach in enumerate(machine_of):
            buckets.setdefault(mach, []).append(pid)
        return cls.from_groups(buckets.values(), u=u)

    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        return sum(len(g) for g in self.groups)

    @property
    def n_machines(self) -> int:
        return len(self.groups)

    def machine_of(self) -> List[int]:
        """Per-process machine index (inverse of :meth:`from_assignment`)."""
        out = [-1] * self.n
        for k, g in enumerate(self.groups):
            for pid in g:
                out[pid] = k
        return out

    def coset_of(self, pid: int) -> frozenset:
        """The processes co-running with ``pid`` (its ``S_i``)."""
        for g in self.groups:
            if pid in g:
                return frozenset(g) - {pid}
        raise KeyError(f"process {pid} not in schedule")

    def pretty(self, workload: Workload | None = None) -> str:
        """Render one machine per line, with job labels when available."""
        lines = []
        for k, g in enumerate(self.groups):
            if workload is None:
                members = ", ".join(str(p) for p in g)
            else:
                members = ", ".join(workload.label(p) for p in g)
            lines.append(f"machine {k}: [{members}]")
        return "\n".join(lines)
