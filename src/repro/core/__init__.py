"""Core problem model: jobs, machines, degradations, schedules, objectives."""

from .constraints import (
    BandwidthCapConstraint,
    CachePartitionModel,
    ScenarioConstraint,
    constraint_from_dict,
    constraint_to_dict,
)
from .degradation import (
    CacheDegradationModel,
    MatrixDegradationModel,
    MissRatePressureModel,
    SDCDegradationModel,
)
from .jobs import Job, JobKind, Process, Workload, pc_job, pe_job, serial_job
from .machine import (
    CLUSTERS,
    DUAL_CORE,
    DUAL_CORE_CLUSTER,
    EIGHT_CORE,
    EIGHT_CORE_CLUSTER,
    MACHINES,
    QUAD_CORE,
    QUAD_CORE_CLUSTER,
    CacheSpec,
    ClusterSpec,
    MachineSpec,
)
from .objective import ScheduleEvaluation, evaluate_schedule, partial_distance
from .problem import CoSchedulingProblem
from .schedule import CoSchedule, validate_groups

__all__ = [
    "ScenarioConstraint",
    "BandwidthCapConstraint",
    "CachePartitionModel",
    "constraint_to_dict",
    "constraint_from_dict",
    "CacheDegradationModel",
    "MatrixDegradationModel",
    "MissRatePressureModel",
    "SDCDegradationModel",
    "Job",
    "JobKind",
    "Process",
    "Workload",
    "pc_job",
    "pe_job",
    "serial_job",
    "CacheSpec",
    "ClusterSpec",
    "MachineSpec",
    "DUAL_CORE",
    "QUAD_CORE",
    "EIGHT_CORE",
    "DUAL_CORE_CLUSTER",
    "QUAD_CORE_CLUSTER",
    "EIGHT_CORE_CLUSTER",
    "MACHINES",
    "CLUSTERS",
    "ScheduleEvaluation",
    "evaluate_schedule",
    "partial_distance",
    "CoSchedulingProblem",
    "CoSchedule",
    "validate_groups",
]
