"""Summarize a JSONL search trace into a human-readable report.

Consumes the event stream written by :class:`repro.perf.Tracer` (see
``docs/OBSERVABILITY.md`` for the schema) and answers the questions a slow
or budget-stopped solve raises: how far did the search get, when did the
incumbent last improve, how much pruning did dismissal do, which fallback
stage produced the answer, and why did the run stop.

Use programmatically::

    from repro.analysis.trace_report import summarize_trace, render_report
    from repro.perf import read_trace

    summary = summarize_trace(read_trace("solve.jsonl"))
    print(render_report(summary))

or from the shell (the companion of ``cosched solve --trace``)::

    python -m repro.analysis.trace_report solve.jsonl
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from ..perf.tracer import read_trace

__all__ = ["summarize_trace", "render_report", "main"]


def summarize_trace(events: Iterable[dict]) -> Dict[str, object]:
    """Fold an event stream into one summary dict.

    Keys: ``n_events``, ``event_counts`` (per type), ``wall_span`` (first to
    last timestamp), ``solvers`` (run order), ``expanded`` (total expand
    events), ``expand_rate`` (events/s over the span), ``dismissed`` (total
    dismissal count), ``max_depth``, ``incumbents`` (objective trajectory:
    list of ``{t, solver, objective}``), ``first_incumbent`` /
    ``best_incumbent``, ``budget_stops`` (list of ``{solver, reason}``),
    ``fallbacks`` (list of ``{from, to, reason}``), ``final`` (the last
    solve_end payload, if any), ``service`` (svc_* event totals from a
    :class:`repro.service.SolveService` trace: enqueued / cache_hits /
    coalesced / warm_starts / rejects, the derived ``cache_hit_rate``, and
    ``reject_reasons``), and ``evolve`` (evo_* totals from a
    :class:`repro.evolve.GeneticSolver` run: ``generations`` completed,
    ``islands`` observed, ``migrations``, ``converged``, and the best
    objective any generation reported).
    """
    counts: Counter = Counter()
    n_events = 0
    t_first: Optional[float] = None
    t_last: Optional[float] = None
    solvers: List[str] = []
    expanded = 0
    dismissed = 0
    max_depth = 0
    incumbents: List[dict] = []
    budget_stops: List[dict] = []
    fallbacks: List[dict] = []
    final: Optional[dict] = None
    svc = {"enqueued": 0, "cache_hits": 0, "coalesced": 0,
           "warm_starts": 0, "rejects": 0}
    reject_reasons: Counter = Counter()
    evo_generations = 0
    evo_islands = 0
    evo_migrations = 0
    evo_converged = False
    evo_best: Optional[float] = None

    for event in events:
        ev = event.get("ev", "?")
        t = event.get("t")
        n_events += 1
        counts[ev] += 1
        if isinstance(t, (int, float)):
            if t_first is None:
                t_first = t
            t_last = t
        if ev == "solve_start":
            solvers.append(event.get("solver", "?"))
        elif ev == "expand":
            expanded += 1
            depth = event.get("depth")
            if isinstance(depth, int) and depth > max_depth:
                max_depth = depth
        elif ev == "level":
            depth = event.get("depth")
            if isinstance(depth, int) and depth > max_depth:
                max_depth = depth
        elif ev == "dismiss":
            dismissed += int(event.get("count", 1))
        elif ev == "incumbent":
            incumbents.append({
                "t": t,
                "solver": event.get("solver"),
                "objective": event.get("objective"),
            })
        elif ev == "budget_stop":
            budget_stops.append({
                "solver": event.get("solver"),
                "reason": event.get("reason"),
            })
        elif ev == "fallback":
            fallbacks.append({
                "from": event.get("from_solver"),
                "to": event.get("to_solver"),
                "reason": event.get("reason"),
            })
        elif ev == "solve_end":
            final = event
        elif ev == "svc_enqueue":
            svc["enqueued"] += 1
        elif ev == "svc_cache_hit":
            svc["cache_hits"] += 1
        elif ev == "svc_coalesce":
            svc["coalesced"] += 1
        elif ev == "svc_warm_start":
            svc["warm_starts"] += 1
        elif ev == "svc_reject":
            svc["rejects"] += 1
            reject_reasons[event.get("reason", "?")] += 1
        elif ev == "evo_generation":
            gen = event.get("generation")
            if isinstance(gen, int):
                evo_generations = max(evo_generations, gen + 1)
            island = event.get("island")
            if isinstance(island, int):
                evo_islands = max(evo_islands, island + 1)
            best = event.get("best")
            if isinstance(best, (int, float)):
                evo_best = best if evo_best is None else min(evo_best, best)
        elif ev == "evo_migration":
            evo_migrations += 1
        elif ev == "evo_converge":
            evo_converged = True

    span = 0.0
    if t_first is not None and t_last is not None:
        span = max(0.0, t_last - t_first)
    objectives = [
        i["objective"] for i in incumbents
        if isinstance(i.get("objective"), (int, float))
    ]
    return {
        "n_events": n_events,
        "event_counts": dict(counts),
        "wall_span": span,
        "solvers": solvers,
        "expanded": expanded,
        "expand_rate": expanded / span if span > 0 else 0.0,
        "dismissed": dismissed,
        "max_depth": max_depth,
        "incumbents": incumbents,
        "first_incumbent": objectives[0] if objectives else None,
        "best_incumbent": min(objectives) if objectives else None,
        "budget_stops": budget_stops,
        "fallbacks": fallbacks,
        "final": final,
        "service": {
            **svc,
            "requests": sum(
                svc[k] for k in ("enqueued", "cache_hits", "coalesced")
            ) + svc["rejects"],
            "cache_hit_rate": (
                svc["cache_hits"]
                / max(1, svc["enqueued"] + svc["cache_hits"]
                      + svc["coalesced"])
            ),
            "reject_reasons": dict(reject_reasons),
        },
        "evolve": {
            "generations": evo_generations,
            "islands": evo_islands,
            "migrations": evo_migrations,
            "converged": evo_converged,
            "best": evo_best,
        },
    }


def render_report(summary: Dict[str, object]) -> str:
    """Multi-line text report for a :func:`summarize_trace` summary."""
    lines = ["trace report:"]
    lines.append(f"  events                 {summary['n_events']}")
    lines.append(f"  wall span              {summary['wall_span']:.4f}s")
    if summary["solvers"]:
        lines.append(f"  solver runs            {', '.join(summary['solvers'])}")
    counts = summary["event_counts"]
    if counts:
        lines.append("  by type:")
        for name in sorted(counts):
            lines.append(f"    {name:<20s} {counts[name]}")
    if summary["expanded"]:
        lines.append(
            f"  expansions             {summary['expanded']} "
            f"({summary['expand_rate']:.0f}/s), max depth "
            f"{summary['max_depth']}"
        )
    if summary["dismissed"]:
        lines.append(f"  subpaths dismissed     {summary['dismissed']}")
    if summary["incumbents"]:
        lines.append(
            f"  incumbents             {len(summary['incumbents'])} "
            f"(first {summary['first_incumbent']:.6f}, "
            f"best {summary['best_incumbent']:.6f})"
        )
    for stop in summary["budget_stops"]:
        lines.append(
            f"  budget stop            {stop['solver']}: {stop['reason']}"
        )
    for fb in summary["fallbacks"]:
        lines.append(
            f"  fallback               {fb['from']} -> {fb['to']} "
            f"({fb['reason']})"
        )
    service = summary.get("service")
    if isinstance(service, dict) and service.get("requests"):
        lines.append(
            f"  service requests       {service['requests']} "
            f"(cache hits {service['cache_hits']} — "
            f"{service['cache_hit_rate']:.0%}, "
            f"coalesced {service['coalesced']}, "
            f"warm starts {service['warm_starts']}, "
            f"rejects {service['rejects']})"
        )
        for reason, count in sorted(service["reject_reasons"].items()):
            lines.append(f"    reject: {reason:<12s} {count}")
    evolve = summary.get("evolve")
    if isinstance(evolve, dict) and evolve.get("generations"):
        best = evolve.get("best")
        best_text = f"{best:.6f}" if isinstance(best, (int, float)) else "?"
        lines.append(
            f"  evolve                 {evolve['generations']} generations "
            f"x {evolve['islands']} islands "
            f"(migrations {evolve['migrations']}, "
            f"converged {evolve['converged']}, best {best_text})"
        )
    final = summary["final"]
    if isinstance(final, dict):
        objective = final.get("objective")
        objective_text = (
            f"{objective:.6f}" if isinstance(objective, (int, float))
            else "none"
        )
        lines.append(
            f"  final                  {final.get('solver')}: "
            f"objective={objective_text} optimal={final.get('optimal')} "
            f"stopped={final.get('stopped')}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis.trace_report FILE [FILE ...]``"""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.analysis.trace_report FILE [FILE ...]",
              file=sys.stderr)
        return 2
    for path in args:
        if len(args) > 1:
            print(f"== {path} ==")
        print(render_report(summarize_trace(read_trace(path))))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
