"""Summarize a JSONL search trace into a human-readable report.

Consumes the event stream written by :class:`repro.perf.Tracer` (see
``docs/OBSERVABILITY.md`` for the schema) and answers the questions a slow
or budget-stopped solve raises: how far did the search get, when did the
incumbent last improve, how much pruning did dismissal do, which fallback
stage produced the answer, and why did the run stop.

Use programmatically::

    from repro.analysis.trace_report import summarize_trace, render_report
    from repro.perf import read_trace

    summary = summarize_trace(read_trace("solve.jsonl"))
    print(render_report(summary))

or from the shell (the companion of ``cosched solve --trace``)::

    python -m repro.analysis.trace_report solve.jsonl
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from ..perf.tracer import read_trace

__all__ = ["summarize_trace", "render_report", "main"]


def summarize_trace(events: Iterable[dict]) -> Dict[str, object]:
    """Fold an event stream into one summary dict.

    Keys: ``n_events``, ``event_counts`` (per type), ``wall_span`` (first to
    last timestamp), ``solvers`` (run order), ``expanded`` (total expand
    events), ``expand_rate`` (events/s over the span), ``dismissed`` (total
    dismissal count), ``max_depth``, ``incumbents`` (objective trajectory:
    list of ``{t, solver, objective}``), ``first_incumbent`` /
    ``best_incumbent``, ``budget_stops`` (list of ``{solver, reason}``),
    ``fallbacks`` (list of ``{from, to, reason}``), and ``final``
    (the last solve_end payload, if any).
    """
    counts: Counter = Counter()
    n_events = 0
    t_first: Optional[float] = None
    t_last: Optional[float] = None
    solvers: List[str] = []
    expanded = 0
    dismissed = 0
    max_depth = 0
    incumbents: List[dict] = []
    budget_stops: List[dict] = []
    fallbacks: List[dict] = []
    final: Optional[dict] = None

    for event in events:
        ev = event.get("ev", "?")
        t = event.get("t")
        n_events += 1
        counts[ev] += 1
        if isinstance(t, (int, float)):
            if t_first is None:
                t_first = t
            t_last = t
        if ev == "solve_start":
            solvers.append(event.get("solver", "?"))
        elif ev == "expand":
            expanded += 1
            depth = event.get("depth")
            if isinstance(depth, int) and depth > max_depth:
                max_depth = depth
        elif ev == "level":
            depth = event.get("depth")
            if isinstance(depth, int) and depth > max_depth:
                max_depth = depth
        elif ev == "dismiss":
            dismissed += int(event.get("count", 1))
        elif ev == "incumbent":
            incumbents.append({
                "t": t,
                "solver": event.get("solver"),
                "objective": event.get("objective"),
            })
        elif ev == "budget_stop":
            budget_stops.append({
                "solver": event.get("solver"),
                "reason": event.get("reason"),
            })
        elif ev == "fallback":
            fallbacks.append({
                "from": event.get("from_solver"),
                "to": event.get("to_solver"),
                "reason": event.get("reason"),
            })
        elif ev == "solve_end":
            final = event

    span = 0.0
    if t_first is not None and t_last is not None:
        span = max(0.0, t_last - t_first)
    objectives = [
        i["objective"] for i in incumbents
        if isinstance(i.get("objective"), (int, float))
    ]
    return {
        "n_events": n_events,
        "event_counts": dict(counts),
        "wall_span": span,
        "solvers": solvers,
        "expanded": expanded,
        "expand_rate": expanded / span if span > 0 else 0.0,
        "dismissed": dismissed,
        "max_depth": max_depth,
        "incumbents": incumbents,
        "first_incumbent": objectives[0] if objectives else None,
        "best_incumbent": min(objectives) if objectives else None,
        "budget_stops": budget_stops,
        "fallbacks": fallbacks,
        "final": final,
    }


def render_report(summary: Dict[str, object]) -> str:
    """Multi-line text report for a :func:`summarize_trace` summary."""
    lines = ["trace report:"]
    lines.append(f"  events                 {summary['n_events']}")
    lines.append(f"  wall span              {summary['wall_span']:.4f}s")
    if summary["solvers"]:
        lines.append(f"  solver runs            {', '.join(summary['solvers'])}")
    counts = summary["event_counts"]
    if counts:
        lines.append("  by type:")
        for name in sorted(counts):
            lines.append(f"    {name:<20s} {counts[name]}")
    if summary["expanded"]:
        lines.append(
            f"  expansions             {summary['expanded']} "
            f"({summary['expand_rate']:.0f}/s), max depth "
            f"{summary['max_depth']}"
        )
    if summary["dismissed"]:
        lines.append(f"  subpaths dismissed     {summary['dismissed']}")
    if summary["incumbents"]:
        lines.append(
            f"  incumbents             {len(summary['incumbents'])} "
            f"(first {summary['first_incumbent']:.6f}, "
            f"best {summary['best_incumbent']:.6f})"
        )
    for stop in summary["budget_stops"]:
        lines.append(
            f"  budget stop            {stop['solver']}: {stop['reason']}"
        )
    for fb in summary["fallbacks"]:
        lines.append(
            f"  fallback               {fb['from']} -> {fb['to']} "
            f"({fb['reason']})"
        )
    final = summary["final"]
    if isinstance(final, dict):
        objective = final.get("objective")
        objective_text = (
            f"{objective:.6f}" if isinstance(objective, (int, float))
            else "none"
        )
        lines.append(
            f"  final                  {final.get('solver')}: "
            f"objective={objective_text} optimal={final.get('optimal')} "
            f"stopped={final.get('stopped')}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis.trace_report FILE [FILE ...]``"""
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.analysis.trace_report FILE [FILE ...]",
              file=sys.stderr)
        return 2
    for path in args:
        if len(args) > 1:
            print(f"== {path} ==")
        print(render_report(summarize_trace(read_trace(path))))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
