"""ASCII rendering of experiment tables and figure series.

The benchmark harness "regenerates" each paper table/figure as text: tables
print rows matching the paper's layout; figures print their data series
(x, one column per curve), which is the information content of the plot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(v: object, precision: int = 4) -> str:
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, float):
        if v != v:  # NaN
            return "-"
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:.{precision}g}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_value(v, precision) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render figure data: one row per x, one column per named curve."""
    headers = [x_label] + list(series)
    rows: List[List[object]] = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title, precision=precision)
