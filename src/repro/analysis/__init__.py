"""Analysis helpers: MER statistics, CDFs, rendering, trace reports."""

from .calibration import (
    TraceProgram,
    measure_pairwise_matrix,
    predict_pairwise_matrix,
    prediction_error,
)
from .mer import effective_ranks, mer_of_schedule
from .reporting import format_value, render_series, render_table
from .stats import cdf_at, empirical_cdf, summarize

_TRACE_REPORT_EXPORTS = ("render_report", "summarize_trace")


def __getattr__(name):
    # Lazy: keeps ``python -m repro.analysis.trace_report`` runnable without
    # the runpy double-import warning, while ``from repro.analysis import
    # summarize_trace`` still works.
    if name in _TRACE_REPORT_EXPORTS:
        from . import trace_report

        return getattr(trace_report, name)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")


__all__ = [
    "render_report",
    "summarize_trace",
    "TraceProgram",
    "measure_pairwise_matrix",
    "predict_pairwise_matrix",
    "prediction_error",
    "effective_ranks",
    "mer_of_schedule",
    "format_value",
    "render_series",
    "render_table",
    "cdf_at",
    "empirical_cdf",
    "summarize",
]
