"""Analysis helpers: MER statistics, CDFs, ASCII table/series rendering."""

from .calibration import (
    TraceProgram,
    measure_pairwise_matrix,
    predict_pairwise_matrix,
    prediction_error,
)
from .mer import effective_ranks, mer_of_schedule
from .reporting import format_value, render_series, render_table
from .stats import cdf_at, empirical_cdf, summarize

__all__ = [
    "TraceProgram",
    "measure_pairwise_matrix",
    "predict_pairwise_matrix",
    "prediction_error",
    "effective_ranks",
    "mer_of_schedule",
    "format_value",
    "render_series",
    "render_table",
    "cdf_at",
    "empirical_cdf",
    "summarize",
]
