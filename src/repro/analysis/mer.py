"""MER — Maximum Effective Rank of a shortest path (Section IV).

HA*'s trimming rule comes from a statistical observation: order each graph
level by ascending node weight; for every node of the optimal path, its
*effective rank* is how many **valid** nodes the search would attempt in that
level before reaching it (invalid nodes — those containing already-scheduled
processes — are skipped for free).  The paper measures the maximum effective
rank (MER) over the shortest path for thousands of random instances (Fig. 5)
and finds MER ≤ n/u almost always, which justifies HA* attempting only the
first n/u valid nodes per level.

``effective_ranks`` computes the per-node effective ranks directly by
enumerating *valid* nodes in ascending weight (lazily for monotone models),
which is equivalent to the paper's rank-minus-invalid-count definition but
avoids walking the astronomically many invalid nodes of large levels.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.degradation import MissRatePressureModel
from ..core.problem import CoSchedulingProblem
from ..core.schedule import CoSchedule
from ..graph.subset_enum import iter_subsets_exact, iter_subsets_monotone

__all__ = ["effective_ranks", "mer_of_schedule"]


def effective_ranks(
    problem: CoSchedulingProblem, schedule: CoSchedule
) -> List[int]:
    """Effective rank of every node on the schedule's path, in path order."""
    model = problem.model
    u = problem.u
    monotone = model.is_member_monotone()
    ranks: List[int] = []
    unscheduled = set(range(problem.n))
    # Path order: groups sorted by smallest pid (CoSchedule canonical form).
    for node in schedule.groups:
        level_pid = node[0]
        assert level_pid == min(unscheduled), "schedule groups out of path order"
        rest = tuple(sorted(unscheduled - {level_pid}))
        target = frozenset(node[1:])
        if monotone and isinstance(model, MissRatePressureModel):
            def weight(sub: Tuple[int, ...]) -> float:
                return model.node_weight_fast((level_pid,) + sub)

            it = iter_subsets_monotone(rest, u - 1, weight, model.pressure)
        else:
            def weight(sub: Tuple[int, ...]) -> float:
                return problem.node_weight((level_pid,) + sub)

            it = iter_subsets_exact(rest, u - 1, weight)
        rank = 0
        for sub, _w in it:
            rank += 1
            if frozenset(sub) == target:
                break
        else:  # pragma: no cover - the target is always a valid subset
            raise RuntimeError("path node not found among valid nodes")
        ranks.append(rank)
        unscheduled -= set(node)
    return ranks


def mer_of_schedule(problem: CoSchedulingProblem, schedule: CoSchedule) -> int:
    """The Maximum Effective Rank over the schedule's path."""
    return max(effective_ranks(problem, schedule))
