"""Small statistics helpers for the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["empirical_cdf", "cdf_at", "summarize"]


def empirical_cdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted sample values and the cumulative fraction at each value.

    Returns ``(xs, fractions)`` with ``fractions[i]`` = fraction of samples
    ``<= xs[i]`` — the curve plotted in the paper's Fig. 5.
    """
    if len(samples) == 0:
        raise ValueError("need at least one sample")
    xs = np.sort(np.asarray(samples, dtype=float))
    fractions = np.arange(1, xs.size + 1, dtype=float) / xs.size
    return xs, fractions


def cdf_at(samples: Sequence[float], x: float) -> float:
    """Fraction of samples <= x."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    return float(np.count_nonzero(arr <= x)) / arr.size


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """min/median/mean/p95/max of a sample set."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    return {
        "min": float(arr.min()),
        "median": float(np.median(arr)),
        "mean": float(arr.mean()),
        "p95": float(np.percentile(arr, 95)),
        "max": float(arr.max()),
    }
