"""Calibrating degradation models from simulated co-runs.

The paper acquires ``d_{i,S}`` by *prediction* (SDC over offline profiles) or
*offline profiling* (actually co-running the programs, Section VI-B).  This
module provides the profiling route against the in-repo cache simulator:

* :func:`measure_pairwise_matrix` — co-run every program pair through one
  simulated shared cache (:mod:`repro.cache.lru`), convert extra misses to
  degradations via Eq. 14-15, and return a
  :class:`~repro.core.degradation.MatrixDegradationModel`-ready matrix;
* :func:`predict_pairwise_matrix` — the SDC-predicted counterpart for the
  same programs, so prediction accuracy can be quantified
  (:func:`prediction_error`), mirroring the validation the SDC authors did.

Programs are specified as reference traces plus a work-cycle count — i.e.
exactly what the trace generator (:mod:`repro.cache.trace`) produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..cache.cpu_time import degradation_from_misses
from ..cache.lru import SetAssociativeLRU, interleave_traces, sdp_from_trace
from ..cache.sdc import sdc_corun_misses
from ..core.machine import MachineSpec

__all__ = [
    "TraceProgram",
    "measure_pairwise_matrix",
    "predict_pairwise_matrix",
    "prediction_error",
]


@dataclass(frozen=True)
class TraceProgram:
    """A program characterized by its memory-reference trace.

    ``cpu_cycles`` is the work excluding stalls (as in Eq. 14);
    ``trace`` holds line addresses (one access per entry).
    """

    name: str
    trace: np.ndarray
    cpu_cycles: float

    def __post_init__(self) -> None:
        if self.cpu_cycles <= 0:
            raise ValueError(f"{self.name}: cpu_cycles must be positive")
        if len(self.trace) == 0:
            raise ValueError(f"{self.name}: empty trace")


def _cache_geometry(machine: MachineSpec, n_sets: int | None) -> Tuple[int, int]:
    assoc = machine.shared_cache.associativity
    sets = n_sets if n_sets is not None else machine.shared_cache.n_sets
    return sets, assoc


def measure_pairwise_matrix(
    programs: Sequence[TraceProgram],
    machine: MachineSpec,
    n_sets: int | None = None,
) -> np.ndarray:
    """Degradation matrix from actual shared-cache co-simulation.

    ``D[i, j]`` is the degradation program ``i`` suffers when co-run with
    program ``j`` alone: both traces are interleaved through one simulated
    shared cache, per-program misses are counted, and extra misses over the
    solo run become stall time via Eq. 14-15.

    ``n_sets`` can shrink the simulated cache so small example traces
    actually contend (full-size LLCs need billions of accesses to pressure).
    """
    k = len(programs)
    if k == 0:
        raise ValueError("need at least one program")
    sets, assoc = _cache_geometry(machine, n_sets)

    # Solo misses.
    solo = []
    for prog in programs:
        cache = SetAssociativeLRU(n_sets=sets, associativity=assoc)
        cache.run(prog.trace)
        solo.append(cache.misses)

    D = np.zeros((k, k))
    tag_shift = 48
    for i in range(k):
        for j in range(k):
            if i == j:
                continue
            merged = interleave_traces([programs[i].trace, programs[j].trace])
            cache = SetAssociativeLRU(n_sets=sets, associativity=assoc)
            my_misses = 0
            for addr in merged:
                hit = cache.access(int(addr))
                if not hit and (int(addr) >> tag_shift) == 0:
                    my_misses += 1
            D[i, j] = degradation_from_misses(
                cpu_cycles=programs[i].cpu_cycles,
                single_misses=solo[i],
                corun_misses=my_misses,
                miss_penalty_cycles=machine.miss_penalty_cycles,
            )
    return D


def predict_pairwise_matrix(
    programs: Sequence[TraceProgram],
    machine: MachineSpec,
    n_sets: int | None = None,
) -> np.ndarray:
    """SDC-predicted counterpart of :func:`measure_pairwise_matrix`.

    Profiles each program's SDP from its trace (per-set capacity folded to
    the shared associativity, as the SDC model assumes) and merges pairs.
    """
    k = len(programs)
    if k == 0:
        raise ValueError("need at least one program")
    sets, assoc = _cache_geometry(machine, n_sets)

    # The SDC merge runs at full-capacity granularity (sets * ways LRU
    # positions): stack distances are measured over the whole cache, and the
    # merge partitions whole-cache lines between competitors — the
    # fully-associative convention of the original SDC formulation.
    capacity = sets * assoc
    sdps = []
    rates = []
    for prog in programs:
        sdp = sdp_from_trace(prog.trace, associativity=capacity)
        sdps.append(sdp)
        single_cycles = prog.cpu_cycles + sdp.misses * machine.miss_penalty_cycles
        rates.append(sdp.accesses / single_cycles)

    D = np.zeros((k, k))
    for i in range(k):
        for j in range(k):
            if i == j:
                continue
            result = sdc_corun_misses(
                [sdps[i], sdps[j]], capacity, [rates[i], rates[j]]
            )
            D[i, j] = degradation_from_misses(
                cpu_cycles=programs[i].cpu_cycles,
                single_misses=result.single_misses[0],
                corun_misses=result.corun_misses[0],
                miss_penalty_cycles=machine.miss_penalty_cycles,
            )
    return D


def prediction_error(measured: np.ndarray, predicted: np.ndarray) -> Dict[str, float]:
    """Error summary between two degradation matrices (off-diagonal only)."""
    if measured.shape != predicted.shape:
        raise ValueError("matrices must have the same shape")
    k = measured.shape[0]
    mask = ~np.eye(k, dtype=bool)
    diff = predicted[mask] - measured[mask]
    denom = np.maximum(measured[mask], 1e-12)
    return {
        "mean_abs_error": float(np.abs(diff).mean()),
        "max_abs_error": float(np.abs(diff).max()),
        "mean_signed_error": float(diff.mean()),
        "mean_relative_error": float(np.abs(diff / denom).mean()),
        "spearman_ordering": _rank_correlation(measured[mask], predicted[mask]),
    }


def _rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation (what matters for *scheduling* is getting
    the ordering of co-runner badness right, not absolute values)."""
    from scipy.stats import spearmanr

    if a.size < 2:
        return 1.0
    if np.ptp(a) == 0 or np.ptp(b) == 0:
        return 0.0  # constant input: correlation undefined
    rho = spearmanr(a, b).statistic
    return float(rho) if rho == rho else 0.0
