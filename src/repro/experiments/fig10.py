"""Figs. 10 & 11 — per-application degradation under OA*, HA* and PG.

Paper: Fig. 10 co-schedules 12 NPB/SPEC applications on quad-core machines;
Fig. 11 co-schedules 16 on 8-core machines.  Per application and on average,
HA* lands within ~10% of OA* while beating PG — remember the algorithms
optimize the batch average, not each individual bar.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis.reporting import render_table
from ..workloads.mixes import FIG10_APPS, FIG11_APPS, serial_mix
from .common import ExperimentResult, solve_spec

EXP_ID = "fig10"
TITLE = "Per-application degradation under OA*, HA* and PG"


def run(
    apps: Sequence[str] = FIG10_APPS,
    cluster: str = "quad",
    include_oastar: bool = True,
) -> ExperimentResult:
    problem = serial_mix(apps, cluster=cluster)
    solvers = []
    if include_oastar:
        solvers.append(("OA*", "oastar?name=OA*"))
    solvers += [("HA*", "hastar"), ("PG", "pg")]
    per_solver: Dict[str, Dict[str, float]] = {}
    averages: Dict[str, float] = {}
    for label, spec in solvers:
        problem.clear_caches()
        result = solve_spec(problem, spec)
        by_app = {
            problem.workload.jobs[jid].name: d
            for jid, d in result.evaluation.job_degradations.items()
        }
        per_solver[label] = by_app
        averages[label] = result.evaluation.average_job_degradation
    labels = [label for label, _ in solvers]
    rows = []
    for app in apps:
        rows.append([app] + [per_solver[lb].get(app, float("nan")) for lb in labels])
    rows.append(["AVG"] + [averages[lb] for lb in labels])
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} [{cluster}-core, {len(apps)} apps]",
        text=render_table(["App"] + labels, rows, title=f"{TITLE} ({cluster})"),
        data={"per_solver": per_solver, "averages": averages},
    )


def run_fig11(cluster: str = "eight", include_oastar: bool = False,
              apps: Sequence[str] = FIG11_APPS) -> ExperimentResult:
    """Fig. 11 flavour: 16 applications on 8-core machines.

    OA* is optional here: one 8-core level over 16 apps has C(15,7) = 6435
    nodes per expansion, which the exact search handles but slowly; the
    paper's headline for this figure is HA* vs PG.
    """
    result = run(apps=apps, cluster=cluster, include_oastar=include_oastar)
    result.exp_id = "fig11"
    return result
