"""Fig. 12 — HA* vs PG solution quality on large synthetic batches.

Paper: synthetic jobs (miss rates U[15%, 75%]) in batches of 120→1200 on
quad-core and 8-core machines; HA* beats PG by 20-25% (quad) / 16-18%
(8-core).  Paper-scale: ``counts=(120, 480, 720, 1200)``.

Two reproduction notes (details in EXPERIMENTS.md):

* the quality gap requires *pair-idiosyncratic* contention
  (``random_interaction_instance``) — when a single politeness score fully
  captures a job's behaviour (symmetric linear pressure model), PG is
  already near-optimal and no search can beat it by much;
* at these scales HA* runs in its bounded-beam mode (``beam_width = n/u``),
  the Python-performance substitution for the paper's C implementation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.reporting import render_series
from ..workloads.synthetic import random_interaction_instance
from .common import ExperimentResult, solve_spec

EXP_ID = "fig12"
TITLE = "Average degradation under HA* and PG (synthetic jobs)"


def run(
    counts: Sequence[int] = (48, 120, 240),
    cluster: str = "quad",
    seed: int = 0,
) -> ExperimentResult:
    ha_vals: List[float] = []
    pg_vals: List[float] = []
    gains: List[float] = []
    for n in counts:
        problem = random_interaction_instance(n, cluster=cluster, seed=seed)
        beam = max(16, problem.n // problem.u)
        ha = solve_spec(problem, f"hastar?beam_width={beam}")
        pg = solve_spec(problem, "pg")
        ha_avg = ha.evaluation.average_job_degradation
        pg_avg = pg.evaluation.average_job_degradation
        ha_vals.append(ha_avg)
        pg_vals.append(pg_avg)
        gains.append((pg_avg - ha_avg) / pg_avg * 100 if pg_avg > 0 else 0.0)
    series = {
        "HA* avg degradation": ha_vals,
        "PG avg degradation": pg_vals,
        "HA* better by (%)": gains,
    }
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} [{cluster}-core]",
        text=render_series("jobs", list(counts), series,
                           title=f"{TITLE} ({cluster})"),
        data={
            "counts": list(counts),
            "hastar": ha_vals,
            "pg": pg_vals,
            "gain_percent": gains,
        },
    )
