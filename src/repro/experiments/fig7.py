"""Fig. 7 — OA*-PC vs OA*-PE: why PC jobs need communication-combined d.

Paper: 4 NPB-MPI jobs (11 processes each: BT-Par, LU-Par, MG-Par, CG-Par)
plus serial programs.  OA*-PC schedules with the communication-combined
degradation (Eq. 9); OA*-PE ignores inter-process communication when
scheduling, and its schedule is then *scored* with Eq. 9.  The paper finds
OA*-PE's schedule ~36-40% worse: placements that ignore which neighbours
land together pay for it in communication.  Paper-scale:
``procs_per_job=11``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis.reporting import render_table
from ..core.objective import evaluate_schedule
from ..workloads.mixes import pc_serial_mix
from .common import ExperimentResult, solve_spec

EXP_ID = "fig7"
TITLE = "CCD under OA*-PC vs OA*-PE for an MPI + serial mix"


def run(
    procs_per_job: int = 5,
    pc_names: Sequence[str] = ("MG-Par", "CG-Par"),
    serial_names: Sequence[str] = ("UA", "DC", "FT", "IS", "BT", "EP"),
    cluster: str = "quad",
    condense: bool = True,
    halo_scale: float = 160.0,
    scramble_seed: int = 1,
) -> ExperimentResult:
    """Defaults are scaled from the paper's 4 jobs x 11 ranks to 2 jobs x 5
    ranks (exact search budget).  Three calibrations keep the figure's
    regime intact at the smaller size: 5-rank jobs cannot fit on one
    quad-core machine (rank placement must matter); rank ids are scrambled
    relative to grid positions (a communication-blind scheduler gets no
    free adjacency); and ``halo_scale`` raises communication to a
    first-class cost, as in the paper's measured CCDs (its Fig. 7 y-axis
    reaches ~15-20, i.e. communication dominated compute)."""
    # The true problem: communication-combined degradations (Eq. 9).
    problem = pc_serial_mix(
        procs_per_job=procs_per_job,
        pc_names=pc_names,
        serial_names=serial_names,
        cluster=cluster,
        halo_scale=halo_scale,
        scramble_seed=scramble_seed,
    )
    pc_result = solve_spec(
        problem, f"oastar?name=OA*-PC&condense={condense}"
    )

    # OA*-PE: schedule ignoring communications (comm model dropped)...
    blind = pc_serial_mix(
        procs_per_job=procs_per_job,
        pc_names=pc_names,
        serial_names=serial_names,
        cluster=cluster,
        treat_pc_as_pe=True,
        halo_scale=halo_scale,
        scramble_seed=scramble_seed,
    )
    pe_result = solve_spec(
        blind, f"oastar?name=OA*-PE&condense={condense}"
    )
    # ... then score with the communication-aware objective.
    pe_eval = evaluate_schedule(problem, pe_result.schedule)

    rows = []
    per_job: Dict[str, Dict[str, float]] = {}
    for job in problem.workload.jobs:
        d_pc = pc_result.evaluation.job_degradations[job.job_id]
        d_pe = pe_eval.job_degradations[job.job_id]
        rows.append([job.name, d_pc, d_pe])
        per_job[job.name] = {"oastar_pc": d_pc, "oastar_pe": d_pe}
    avg_pc = pc_result.evaluation.average_job_degradation
    avg_pe = pe_eval.average_job_degradation
    rows.append(["AVG", avg_pc, avg_pe])
    worse = (avg_pe - avg_pc) / avg_pc * 100 if avg_pc > 0 else 0.0
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} [{cluster}-core]",
        text=render_table(
            ["Job", "OA*-PC", "OA*-PE"],
            rows,
            title=f"{TITLE} ({cluster}); OA*-PE worse by {worse:.1f}%",
        ),
        data={
            "per_job": per_job,
            "avg_pc": avg_pc,
            "avg_pe": avg_pe,
            "pe_worse_by_percent": worse,
        },
    )
