"""Table III — efficiency of the IP solvers vs OA* vs O-SVP.

Paper: quad-core, 8/12/16 processes in three flavours — serial-only (se),
serial + PE (pe), serial + PC (pc) — solved by CPLEX/CBC/SCIP/GLPK on the IP
model, by OA*, and by the earlier O-SVP.  Substitutions (see DESIGN.md):
HiGHS ``milp`` stands in for CPLEX; the from-scratch LP branch-and-bound
stands in for the open-source solvers.  The reproduced shape: OA* beats
every IP backend by orders of magnitude and widens its lead over O-SVP with
problem size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import render_table
from ..workloads.mixes import TABLE1_SETS, TABLE2_SETS, serial_mix
from ..workloads.synthetic import random_mixed_instance
from .common import ExperimentResult, solve_spec

EXP_ID = "table3"
TITLE = "Efficiency of different methods on quad-core machines (seconds)"


def _make_problem(n: int, flavour: str, cluster: str, seed: int):
    if flavour == "se":
        return serial_mix(TABLE1_SETS[n], cluster=cluster)
    if flavour == "pe":
        par = TABLE2_SETS[n]["parallel"]
        shapes = tuple(k for _name, k in par)  # type: ignore[union-attr]
        n_serial = n - sum(shapes)
        return random_mixed_instance(
            n_serial=n_serial, pe_shapes=shapes, cluster=cluster, seed=seed
        )
    if flavour == "pc":
        from ..workloads.mixes import mixed_parallel_serial

        return mixed_parallel_serial(n, cluster=cluster)
    raise ValueError(f"unknown flavour {flavour!r}")


def run(
    sizes: Sequence[int] = (8, 12, 16),
    flavours: Sequence[str] = ("se", "pe", "pc"),
    cluster: str = "quad",
    bb_time_limit: float = 120.0,
    seed: int = 0,
) -> ExperimentResult:
    solver_names = ["IP(milp)", "IP(bb-simplex)", "OA*", "O-SVP"]
    rows: List[List[object]] = []
    data: Dict[str, Dict[str, Optional[float]]] = {}
    for n in sizes:
        for flavour in flavours:
            problem = _make_problem(n, flavour, cluster, seed)
            times: Dict[str, Optional[float]] = {}
            objectives: Dict[str, float] = {}
            for label, spec in [
                ("IP(milp)", "ip"),
                ("IP(bb-simplex)", f"bb?time_limit={bb_time_limit}"),
                ("OA*", "oastar?name=OA*"),
                ("O-SVP", "osvp"),
            ]:
                problem.clear_caches()
                try:
                    result = solve_spec(problem, spec)
                    times[label] = result.time_seconds
                    objectives[label] = result.objective
                except RuntimeError:
                    times[label] = None  # gave up, like SCIP's 1000 s bailout
            objs = list(objectives.values())
            assert all(abs(o - objs[0]) < 1e-6 * (1 + abs(objs[0])) for o in objs), (
                f"optimal solvers disagree on {n}({flavour}): {objectives}"
            )
            key = f"{n}({flavour})"
            data[key] = times
            rows.append(
                [key]
                + [times[s] if times[s] is not None else "gave up"
                   for s in solver_names]
            )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        text=render_table(["Jobs"] + solver_names, rows, title=TITLE),
        data=data,
    )
