"""Fig. 6 — OA*-PE vs OA*-SE: why parallel jobs need max-aggregation.

Paper: a mix of PE programs (10 processes each: PI, MMS, RA, EP, MCM) and
NPB/SPEC serial programs, co-scheduled on quad-core and 8-core machines with
two objective treatments:

* **OA*-SE** — path distance by Eq. 12, i.e. every parallel process's
  degradation is *summed* as if it were a serial job;
* **OA*-PE** — path distance by Eq. 13, i.e. a parallel job contributes the
  *max* over its processes (its real finish-time inflation).

Both schedules are then *scored* with the true objective (Eq. 13).  The paper
finds OA*-SE's schedule is ~32-35% worse — optimizing the wrong objective
finds the wrong schedule.  Paper-scale: ``procs_per_job=10``, 5 PE programs.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..analysis.reporting import render_table
from ..core.objective import evaluate_schedule
from ..workloads.mixes import pe_serial_mix
from .common import ExperimentResult, solve_spec

EXP_ID = "fig6"
TITLE = "Degradation under OA*-PE vs OA*-SE for a PE + serial mix"


def run(
    procs_per_job: int = 3,
    pe_names: Sequence[str] = ("PI", "MMS", "RA", "MCM"),
    serial_names: Sequence[str] = ("BT", "DC", "UA", "IS"),
    cluster: str = "quad",
) -> ExperimentResult:
    problem = pe_serial_mix(
        procs_per_job=procs_per_job,
        pe_names=pe_names,
        serial_names=serial_names,
        cluster=cluster,
    )
    # OA*-PE: the correct max-aggregated objective.
    pe_result = solve_spec(problem, "oastar?name=OA*-PE")

    # OA*-SE: schedule as if every process were serial (Eq. 12)...
    from ..core.jobs import Workload, serial_job
    from ..core.degradation import SDCDegradationModel
    from ..core.problem import CoSchedulingProblem
    from ..workloads.catalog import CATALOG

    wl = problem.workload
    flat_jobs = []
    for pid in range(wl.n_real):
        job = wl.job_of(pid)
        flat_jobs.append(
            serial_job(pid, f"{job.name}#{wl.processes[pid].rank}",
                       profile_name=job.profile_name)
        )
    flat_wl = Workload(flat_jobs, cores_per_machine=problem.u)
    flat_model = SDCDegradationModel(flat_wl, problem.cluster.machine, CATALOG)
    flat_problem = CoSchedulingProblem(flat_wl, problem.cluster, flat_model)
    se_result = solve_spec(flat_problem, "oastar?name=OA*-SE")
    # ... then score that schedule with the TRUE parallel-aware objective.
    se_eval = evaluate_schedule(problem, se_result.schedule)

    rows = []
    per_job: Dict[str, Dict[str, float]] = {}
    for job in wl.jobs:
        d_pe = pe_result.evaluation.job_degradations[job.job_id]
        d_se = se_eval.job_degradations[job.job_id]
        rows.append([job.name, d_pe, d_se])
        per_job[job.name] = {"oastar_pe": d_pe, "oastar_se": d_se}
    avg_pe = pe_result.evaluation.average_job_degradation
    avg_se = se_eval.average_job_degradation
    rows.append(["AVG", avg_pe, avg_se])
    worse = (avg_se - avg_pe) / avg_pe * 100 if avg_pe > 0 else 0.0
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} [{cluster}-core]",
        text=render_table(
            ["Job", "OA*-PE", "OA*-SE"],
            rows,
            title=f"{TITLE} ({cluster}); OA*-SE worse by {worse:.1f}%",
        ),
        data={
            "per_job": per_job,
            "avg_pe": avg_pe,
            "avg_se": avg_se,
            "se_worse_by_percent": worse,
        },
    )
