"""Fig. 13 — scalability of HA* on quad-core vs 8-core machines.

Paper: synthetic batches of 48→1208 jobs; HA* solving time grows with job
count but is *smaller* on 8-core than quad-core machines — more cores means
fewer machines, fewer levels, and fewer valid nodes attempted per level
(the MER bound n/u shrinks relative to the level size).  OA* behaves the
opposite way (Fig. 9), which is the paper's closing contrast.

Paper-scale: ``counts=(48, 144, ..., 1208)``.  HA* runs in bounded-beam
mode at these sizes (see fig12 notes).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.reporting import render_series
from ..workloads.synthetic import random_interaction_instance
from .common import ExperimentResult, solve_spec

EXP_ID = "fig13"
TITLE = "Scalability of HA* on quad-core and 8-core machines"


def run(
    counts: Sequence[int] = (48, 120, 240),
    clusters: Sequence[str] = ("quad", "eight"),
    seed: int = 0,
) -> ExperimentResult:
    data: Dict[str, List[float]] = {}
    for cluster in clusters:
        times: List[float] = []
        for n in counts:
            problem = random_interaction_instance(n, cluster=cluster, seed=seed)
            beam = max(16, problem.n // problem.u)
            result = solve_spec(problem, f"hastar?beam_width={beam}")
            times.append(result.time_seconds)
        data[cluster] = times
    series = {f"HA* time on {c}-core (s)": data[c] for c in clusters}
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        text=render_series("jobs", list(counts), series, title=TITLE),
        data={"counts": list(counts), **data},
    )
