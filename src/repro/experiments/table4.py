"""Table IV — the two h(v) strategies, measured in time and visited paths.

Paper: 16/20/24 synthetic jobs on quad-core; OA* with Strategy 1, OA* with
Strategy 2, and O-SVP, reporting solving time and the number of visited
paths (priority-queue insertions).  The reproduced shape: Strategy 2 prunes
harder than Strategy 1, which in turn beats the heuristic-free O-SVP.  The
*magnitude* of the published gaps (orders of magnitude) additionally relies
on inserting successors incrementally in weight order; our eager generator
enqueues whole levels, so the ordering reproduces while the ratios are
milder — see EXPERIMENTS.md.

Instances come from the same pipeline the paper uses: random per-job cache
profiles degraded through the SDC model.  All three configurations run with
the auxiliary process floor and partial expansion off, isolating exactly
the paper's two designs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.reporting import render_table
from ..workloads.synthetic import random_profile_instance
from .common import ExperimentResult, solve_spec

EXP_ID = "table4"
TITLE = "Comparison of the strategies for setting h(v)"


def run(
    sizes: Sequence[int] = (12, 14, 16),
    cluster: str = "quad",
    seed: int = 0,
) -> ExperimentResult:
    rows: List[List[object]] = []
    data: Dict[int, Dict[str, Dict[str, float]]] = {}
    for n in sizes:
        problem = random_profile_instance(n, cluster=cluster, seed=seed)
        per = {}
        for label, spec in [
            (
                "Strategy 1",
                "oastar?h_strategy=1&process_floor=false"
                "&partial_expansion=false&name=OA*(h1)",
            ),
            (
                "Strategy 2",
                "oastar?h_strategy=2&process_floor=false"
                "&partial_expansion=false&name=OA*(h2)",
            ),
            ("O-SVP", "osvp"),
        ]:
            problem.clear_caches()
            result = solve_spec(problem, spec)
            per[label] = {
                "time": result.time_seconds,
                "visited_paths": result.stats["visited_paths"],
                "objective": result.objective,
            }
        objs = [v["objective"] for v in per.values()]
        assert all(abs(o - objs[0]) < 1e-9 * (1 + abs(objs[0])) for o in objs)
        data[n] = per
        rows.append(
            [
                n,
                per["Strategy 1"]["time"],
                per["Strategy 2"]["time"],
                per["O-SVP"]["time"],
                int(per["Strategy 1"]["visited_paths"]),
                int(per["Strategy 2"]["visited_paths"]),
                int(per["O-SVP"]["visited_paths"]),
            ]
        )
    headers = [
        "Jobs",
        "S1 time (s)", "S2 time (s)", "O-SVP time (s)",
        "S1 paths", "S2 paths", "O-SVP paths",
    ]
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        text=render_table(headers, rows, title=TITLE),
        data=data,
    )
