"""Table I — optimality cross-check of OA* vs IP on serial jobs.

Paper: co-scheduling 8/12/16 serial NPB-SER + SPEC programs on dual- and
quad-core machines; the IP solver and OA* must report identical (optimal)
average degradations.  Paper-scale parameters: ``sizes=(8, 12, 16)``,
``clusters=("dual", "quad")``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..analysis.reporting import render_table
from ..workloads.mixes import TABLE1_SETS, serial_mix
from .common import ExperimentResult, solve_spec

EXP_ID = "table1"
TITLE = "Comparison between OA* and IP for serial jobs (avg degradation)"


def run(
    sizes: Sequence[int] = (8, 12, 16),
    clusters: Sequence[str] = ("dual", "quad"),
) -> ExperimentResult:
    rows = []
    data = {}
    for n in sizes:
        names = TABLE1_SETS[n]
        row = [n]
        for cluster in clusters:
            problem = serial_mix(names, cluster=cluster)
            ip = solve_spec(problem, "ip")
            problem.clear_caches()
            oa = solve_spec(problem, "oastar")
            row += [
                ip.evaluation.average_job_degradation,
                oa.evaluation.average_job_degradation,
            ]
            data[(n, cluster)] = {
                "ip": ip.evaluation.average_job_degradation,
                "oastar": oa.evaluation.average_job_degradation,
                "ip_time": ip.time_seconds,
                "oastar_time": oa.time_seconds,
                "match": abs(ip.objective - oa.objective) < 1e-9,
            }
        rows.append(row)
    headers = ["Jobs"] + [
        f"{c} {s}" for c in clusters for s in ("IP", "OA*")
    ]
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        text=render_table(headers, rows, title=TITLE),
        data=data,
    )
