"""Per-table/figure experiment runners (Section V of the paper).

``REGISTRY`` maps experiment ids to their ``run`` callables; the CLI and the
benchmark harness both dispatch through it.  Each module documents paper-
scale vs default (laptop-scale) parameters.
"""

from . import fig5, fig6, fig7, fig8, fig9, fig10, fig12, fig13, table1, table2, table3, table4
from .common import ExperimentResult

REGISTRY = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig10.run_fig11,
    "fig12": fig12.run,
    "fig13": fig13.run,
}

__all__ = ["REGISTRY", "ExperimentResult"]
