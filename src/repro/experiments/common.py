"""Shared scaffolding for the per-table/per-figure experiment runners.

Every experiment module exposes ``run(...) -> ExperimentResult`` whose
defaults finish on a laptop in seconds-to-minutes.  The paper-scale
parameters are documented per runner (``paper_params``); EXPERIMENTS.md
records which scale each recorded result used.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator

__all__ = ["ExperimentResult", "timed"]


@dataclass
class ExperimentResult:
    """Rendered + structured output of one experiment."""

    exp_id: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"


@contextmanager
def timed() -> Iterator[Dict[str, float]]:
    """Context manager capturing wall time into the yielded dict."""
    out = {"seconds": 0.0}
    t0 = time.perf_counter()
    try:
        yield out
    finally:
        out["seconds"] = time.perf_counter() - t0
