"""Shared scaffolding for the per-table/per-figure experiment runners.

Every experiment module exposes ``run(...) -> ExperimentResult`` whose
defaults finish on a laptop in seconds-to-minutes.  The paper-scale
parameters are documented per runner (``paper_params``); EXPERIMENTS.md
records which scale each recorded result used.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator

__all__ = ["ExperimentResult", "solve_spec", "timed"]


@dataclass
class ExperimentResult:
    """Rendered + structured output of one experiment."""

    exp_id: str
    title: str
    text: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"== {self.exp_id}: {self.title} ==\n{self.text}"


def solve_spec(problem, spec: str, *, budget=None, warm_start=None,
               workers: int = 1):
    """Solve ``problem`` with a runtime registry spec string.

    The experiments' one solver entry point: every runner names its
    solvers as spec strings (``"oastar?h_strategy=2"``, ``"hastar?mer=4"``)
    and routes them through :func:`repro.runtime.run_solve`, so a
    configuration printed in EXPERIMENTS.md can be replayed verbatim via
    ``cosched solve --solver``.  Returns the raw
    :class:`~repro.solvers.base.SolveResult` (runners read objectives,
    timings and solver stats off it, exactly as before).
    """
    from ..runtime import run_solve

    return run_solve(problem, spec, budget=budget, warm_start=warm_start,
                     workers=workers).result


@contextmanager
def timed() -> Iterator[Dict[str, float]]:
    """Context manager capturing wall time into the yielded dict."""
    out = {"seconds": 0.0}
    t0 = time.perf_counter()
    try:
        yield out
    finally:
        out["seconds"] = time.perf_counter() - t0
