"""Fig. 5 — MER statistics over random graphs, and what they justify.

Paper: for batches of 24/32/48/56 synthetic jobs (cache-miss rate drawn
uniformly from [15%, 75%]) on quad-core and 8-core machines, build K=1000
random co-scheduling graphs, find each one's shortest path with OA*, and
record the Maximum Effective Rank — finding MER ≤ n/u for ≳98% of graphs,
which justifies HA*'s per-level trimming.

This reproduction measures the same two quantities per random graph:

* the **MER of the exact optimum** (as defined in Section IV), and
* the **HA\\* optimality gap** — how far the n/u-trimmed search lands from
  the optimum, which is the property HA* actually needs.

Finding (see EXPERIMENTS.md): under every degradation model we tested, the
exact optimum's MER routinely *exceeds* n/u — yet HA* stays within ~10-15%
of optimal, matching the paper's own Figs. 10-11 quality numbers.  The
trimmed graph loses the single exact optimum but retains near-optimal
paths; the n/u rule works for a subtler reason than the published
statistics suggest.

Paper-scale: ``job_counts=(24, 32, 48, 56)``, ``k_graphs=1000``, quad and
8-core.  Defaults are laptop-scale (exact OA* over the SDC pipeline is the
cost driver).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..analysis.mer import mer_of_schedule
from ..analysis.reporting import render_table
from ..analysis.stats import cdf_at
from ..core.machine import CLUSTERS
from ..workloads.synthetic import random_profile_instance
from .common import ExperimentResult, solve_spec

EXP_ID = "fig5"
TITLE = "MER of the optimal path and HA* optimality gap (random graphs)"


def run(
    job_counts: Sequence[int] = (12, 16),
    cluster: str = "quad",
    k_graphs: int = 8,
    seed0: int = 0,
) -> ExperimentResult:
    u = CLUSTERS[cluster].cores
    rows = []
    data: Dict[int, Dict[str, object]] = {}
    for n in job_counts:
        mers: List[int] = []
        gaps: List[float] = []
        for k in range(k_graphs):
            problem = random_profile_instance(n, cluster=cluster,
                                              seed=seed0 + k)
            optimal = solve_spec(problem, "oastar")
            mers.append(mer_of_schedule(problem, optimal.schedule))
            problem.clear_caches()
            trimmed = solve_spec(problem, "hastar")
            gap = 0.0
            if optimal.objective > 0:
                gap = (trimmed.objective - optimal.objective) / optimal.objective
            gaps.append(100.0 * gap)
        bound = n // u
        frac_mer = cdf_at(mers, bound)
        rows.append([
            n, bound, int(np.median(mers)), max(mers),
            f"{100 * frac_mer:.0f}%",
            f"{float(np.mean(gaps)):.1f}%", f"{max(gaps):.1f}%",
        ])
        data[n] = {
            "mers": mers,
            "bound_n_over_u": bound,
            "fraction_within_bound": frac_mer,
            "hastar_gaps_percent": gaps,
            "mean_gap_percent": float(np.mean(gaps)),
        }
    headers = [
        "Jobs", "n/u", "median MER", "max MER", "% MER<=n/u",
        "mean HA* gap", "max HA* gap",
    ]
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} [{cluster}-core, K={k_graphs}]",
        text=render_table(headers, rows, title=f"{TITLE} ({cluster})"),
        data=data,
    )
