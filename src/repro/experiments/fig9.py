"""Fig. 9 — scalability of OA* with the number of serial processes.

Paper: synthetic serial jobs; solving time vs process count on dual-core
(12→120) and quad-core (12→96) machines.  Paper-scale:
``dual=(12,...,120)``, ``quad=(12,...,96)``.  The shape: roughly polynomial
growth, with quad-core far steeper than dual-core (bigger levels).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.reporting import render_series
from ..workloads.synthetic import random_serial_instance
from .common import ExperimentResult, solve_spec

EXP_ID = "fig9"
TITLE = "Scalability of OA* (solving time vs number of processes)"


def run(
    counts_by_cluster: Dict[str, Sequence[int]] | None = None,
    seed: int = 0,
) -> ExperimentResult:
    if counts_by_cluster is None:
        # Dual-core runs at full paper scale (12→120); quad-core is scaled
        # down (the paper's C implementation reached 96 in ~80 s, which is
        # out of a laptop-Python budget — the growth-rate contrast between
        # the two machine types is the figure's point and survives).
        counts_by_cluster = {"dual": (12, 24, 48, 96, 120),
                             "quad": (12, 16, 20, 24)}
    data: Dict[str, Dict[int, float]] = {}
    texts: List[str] = []
    for cluster, counts in counts_by_cluster.items():
        times: List[float] = []
        for n in counts:
            problem = random_serial_instance(n, cluster=cluster, seed=seed)
            result = solve_spec(problem, "oastar")
            times.append(result.time_seconds)
        data[cluster] = dict(zip(counts, times))
        texts.append(
            render_series(
                "processes",
                list(counts),
                {f"OA* time on {cluster}-core (s)": times},
                title=f"{TITLE} — {cluster}-core",
            )
        )
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        text="\n\n".join(texts),
        data=data,
    )
