"""Fig. 8 — effect of communication-aware process condensation.

Paper: 72 total processes on quad-core machines, 6 of the jobs parallel with
1→12 processes each (the rest serial); OA*-PC solving time with and without
condensation.  Condensation wins more as processes-per-job grows because
more graph nodes share a communication property.  Paper-scale:
``total_procs=72``, ``procs_per_job`` up to 12.

Defaults are scaled down (exact search over mixed PC workloads is the most
expensive configuration in the whole reproduction); the crossing shape —
condensed time flattens while uncondensed time grows — appears at any scale.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.reporting import render_series
from ..workloads.synthetic import random_mixed_instance
from .common import ExperimentResult, solve_spec

EXP_ID = "fig8"
TITLE = "OA*-PC solving time with and without process condensation"


def run(
    procs_per_job: Sequence[int] = (1, 2, 4, 6),
    n_parallel_jobs: int = 2,
    total_procs: int = 16,
    cluster: str = "quad",
    seed: int = 0,
) -> ExperimentResult:
    with_c: List[float] = []
    without_c: List[float] = []
    for k in procs_per_job:
        n_serial = total_procs - n_parallel_jobs * k
        if n_serial < 0:
            raise ValueError(
                f"{n_parallel_jobs} jobs x {k} procs exceeds {total_procs}"
            )
        pc_shapes = tuple([k] * n_parallel_jobs) if k > 1 else ()
        # A 1-process "parallel" job is a serial job, as in the paper's x=1.
        extra_serial = n_parallel_jobs if k == 1 else 0
        problem = random_mixed_instance(
            n_serial=n_serial + extra_serial,
            pc_shapes=pc_shapes,
            cluster=cluster,
            seed=seed,
        )
        r_on = solve_spec(problem, "oastar?condense=true&name=OA*+cond")
        problem.clear_caches()
        r_off = solve_spec(
            problem,
            "oastar?condense=false&condense_pe=false&name=OA*-cond",
        )
        assert abs(r_on.objective - r_off.objective) <= 1e-6 * (
            1 + abs(r_off.objective)
        ), "condensation changed the optimal objective"
        with_c.append(r_on.time_seconds)
        without_c.append(r_off.time_seconds)
    series = {
        "with condensation (s)": with_c,
        "without condensation (s)": without_c,
    }
    return ExperimentResult(
        exp_id=EXP_ID,
        title=f"{TITLE} [{cluster}-core, {total_procs} procs]",
        text=render_series(
            "procs/parallel job", list(procs_per_job), series, title=TITLE
        ),
        data={
            "procs_per_job": list(procs_per_job),
            "with_condensation": with_c,
            "without_condensation": without_c,
        },
    )
