"""Table II — optimality cross-check of OA* vs IP on serial + parallel mixes.

Paper: MG-Par and LU-Par (2-4 processes each) combined with SPEC/NPB serial
programs for 8/12/16 total processes on dual- and quad-core machines; IP and
OA* average degradations must coincide.  Paper-scale parameters:
``sizes=(8, 12, 16)``, ``clusters=("dual", "quad")``.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.reporting import render_table
from ..workloads.mixes import mixed_parallel_serial
from .common import ExperimentResult, solve_spec

EXP_ID = "table2"
TITLE = "Comparison of IP and OA* for serial and parallel jobs (avg degradation)"


def run(
    sizes: Sequence[int] = (8, 12, 16),
    clusters: Sequence[str] = ("dual", "quad"),
) -> ExperimentResult:
    rows = []
    data = {}
    for n in sizes:
        row = [n]
        for cluster in clusters:
            problem = mixed_parallel_serial(n, cluster=cluster)
            ip = solve_spec(problem, "ip")
            problem.clear_caches()
            oa = solve_spec(problem, "oastar")
            row += [
                ip.evaluation.average_job_degradation,
                oa.evaluation.average_job_degradation,
            ]
            data[(n, cluster)] = {
                "ip": ip.evaluation.average_job_degradation,
                "oastar": oa.evaluation.average_job_degradation,
                "ip_time": ip.time_seconds,
                "oastar_time": oa.time_seconds,
                "match": abs(ip.objective - oa.objective) < 1e-9,
            }
        rows.append(row)
    headers = ["Procs"] + [f"{c} {s}" for c in clusters for s in ("IP", "OA*")]
    return ExperimentResult(
        exp_id=EXP_ID,
        title=TITLE,
        text=render_table(headers, rows, title=TITLE),
        data=data,
    )
