"""Extensions beyond the paper's evaluated scope (its stated future work)."""

from .vm import MigrationCost, VMPlacementProblem, migration_count, replan

__all__ = ["MigrationCost", "VMPlacementProblem", "migration_count", "replan"]
