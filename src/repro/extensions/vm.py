"""VM-on-physical-machine placement with migration costs.

The paper's closing future-work item: *"extend our co-scheduling methods to
solve the optimal mapping of virtual machines (VM) on physical machines.
The main extension is to allow the VM migrations between physical
machines."*  This module builds exactly that on top of the existing engine:

* a VM is a schedulable process (its workload contends for the shared cache
  like any job — degradation models apply unchanged);
* placement epochs: when the VM population or its behaviour changes, the
  placement is re-optimized; moving a VM off the machine group it currently
  shares costs ``migration_cost`` (service interruption, page-copy traffic)
  expressed in the same degradation units as the objective;
* the migration term enters as a node-level extra cost — every solver (OA*,
  HA*, the IP backends, brute force) therefore optimizes the combined
  objective *exactly*, with no solver changes.

Measuring migrations between two partitions needs care because machines are
interchangeable: we count, for each new machine group, the members that did
not previously share a machine with that group's majority — formally a
maximum-agreement assignment between old and new groups, solved exactly with
a Hungarian assignment (scipy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from ..core.problem import CoSchedulingProblem
from ..core.schedule import CoSchedule
from ..solvers.base import Solver

__all__ = [
    "migration_count",
    "MigrationCost",
    "VMPlacementProblem",
    "replan",
]


def migration_count(old: CoSchedule, new: CoSchedule) -> int:
    """Minimum number of VMs that must move between ``old`` and ``new``.

    Machines are identical, so the new groups are matched to old groups to
    maximize agreement (Hungarian assignment on overlap); every VM outside
    its group's matched predecessor counts as one migration.
    """
    if old.n != new.n or old.u != new.u:
        raise ValueError("schedules must cover the same processes")
    m = old.n_machines
    overlap = np.zeros((m, m), dtype=np.int64)
    old_sets = [frozenset(g) for g in old.groups]
    new_sets = [frozenset(g) for g in new.groups]
    for i, og in enumerate(old_sets):
        for j, ng in enumerate(new_sets):
            overlap[i, j] = len(og & ng)
    rows, cols = linear_sum_assignment(-overlap)
    agreed = int(overlap[rows, cols].sum())
    return old.n - agreed


@dataclass(frozen=True)
class MigrationCost:
    """Per-node migration penalty against a previous placement.

    For a candidate machine group ``T``, the penalty is
    ``cost_per_move * (|T| - best overlap of T with any old group)`` — a
    lower bound on the moves ``T`` forces, and exactly the per-group share
    of the true migration count when groups map one-to-one (the common
    case; :func:`migration_count` reports the exact total afterwards).

    Instances are callables suitable for
    :class:`~repro.core.problem.CoSchedulingProblem`'s ``node_extra_cost``.
    """

    previous_groups: Tuple[frozenset, ...]
    cost_per_move: float

    @classmethod
    def from_schedule(cls, previous: CoSchedule,
                      cost_per_move: float) -> "MigrationCost":
        if cost_per_move < 0:
            raise ValueError("cost_per_move must be non-negative")
        return cls(
            previous_groups=tuple(frozenset(g) for g in previous.groups),
            cost_per_move=cost_per_move,
        )

    def __call__(self, node: Tuple[int, ...]) -> float:
        members = frozenset(node)
        best = max(
            (len(members & g) for g in self.previous_groups), default=0
        )
        return self.cost_per_move * (len(members) - best)


class VMPlacementProblem(CoSchedulingProblem):
    """A co-scheduling problem whose objective charges VM migrations.

    Identical to :class:`CoSchedulingProblem` plus a previous placement and
    a per-move cost; any solver from :mod:`repro.solvers` optimizes
    ``total degradation + cost_per_move * migrations`` exactly.
    """

    def __init__(
        self,
        workload,
        cluster,
        degradation_model,
        previous: CoSchedule,
        cost_per_move: float,
        comm_model=None,
    ):
        super().__init__(
            workload,
            cluster,
            degradation_model,
            comm_model=comm_model,
            node_extra_cost=MigrationCost.from_schedule(previous,
                                                        cost_per_move),
        )
        self.previous = previous
        self.cost_per_move = float(cost_per_move)


def replan(
    problem: CoSchedulingProblem,
    previous: CoSchedule,
    solver: Solver,
    cost_per_move: float,
) -> Dict[str, object]:
    """Re-optimize a placement under a migration budget.

    Returns the new schedule together with its degradation objective, the
    exact migration count versus ``previous``, and — for calibration — what
    a from-scratch re-optimization (``cost_per_move = 0``) would have done.
    """
    migration_aware = CoSchedulingProblem(
        problem.workload,
        problem.cluster,
        problem.model,
        comm_model=problem.comm,
        node_extra_cost=MigrationCost.from_schedule(previous, cost_per_move),
    )
    result = solver.solve(migration_aware)

    # Degradation-only score of the chosen placement (strip the penalty).
    from ..core.objective import evaluate_schedule

    degr_only = evaluate_schedule(problem, result.schedule)
    moves = migration_count(previous, result.schedule)
    stay = evaluate_schedule(problem, previous)
    return {
        "schedule": result.schedule,
        "objective_with_penalty": result.objective,
        "degradation": degr_only.objective,
        "migrations": moves,
        "previous_degradation": stay.objective,
        "solver": result.solver,
        "time_seconds": result.time_seconds,
    }
