"""The sharded-tier frontend: route by fingerprint, shed, drain, respawn.

:class:`ShardedService` owns ``N`` :class:`~repro.service.shard.ShardHandle`
processes and presents the same request surface as a single
:class:`~repro.service.queue.SolveService` — submit / status / metrics —
except that responses are plain status *documents* (the HTTP payload
shape) because every answer crosses a process boundary.  The request
lifecycle:

1. **fingerprint** the problem once, at the frontend
   (:func:`~repro.service.codec.problem_fingerprint`);
2. **route** to ``shard = fingerprint % N``
   (:func:`~repro.service.shard.shard_for`, event ``svc_shard_route``) and
   forward over the shard's HTTP endpoint.  All caching/coalescing for a
   fingerprint therefore happens inside exactly one shard;
3. **degrade instead of failing**: a shard that answers ``queue_full``
   (with in-shard shedding disabled) or is unreachable (crashed) gets its
   request **shed** — solved inline by the dispatcher's cheap
   :class:`~repro.runtime.ShedPolicy` chain, marked ``shed: true`` with
   ``shed_reason`` (``svc_shed``).  Unreachable shards are respawned in
   the background when ``respawn`` is enabled (``svc_shard_spawn``); the
   replacement replays the shared append log, so it comes back warm;
4. **drain** (``svc_drain``): the dispatcher stops admitting
   (``RequestRejected("draining")`` → HTTP 503 + ``Retry-After``),
   SIGTERMs every shard, and waits for each to finish its admitted work —
   the same contract, one level up.

Ticket ids are namespaced ``s<shard>-<local id>`` so ``status()`` can
route; dispatcher-resolved shed tickets are ``shed-<n>`` and kept in a
bounded local table.

:func:`start_dispatcher_server` serves the same JSON endpoints as the
single-process server (``/solve``, ``/delta``, ``/status``, ``/metrics``)
plus ``GET /health`` (shard liveness), so
``cosched submit`` and :class:`~repro.service.client.ServiceClient` work
unchanged against a sharded tier.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from ..core.problem import CoSchedulingProblem
from ..runtime import SpecError, parse_spec, resolve_shed_policy
from ..solvers import Budget
from .client import ServiceClient, ServiceError
from .codec import (
    CodecError,
    problem_fingerprint,
    problem_from_dict,
    schedule_to_dict,
)
from .queue import RequestRejected
from .shard import ShardConfig, ShardHandle, shard_for

__all__ = ["ShardedService", "DispatcherHTTPServer",
           "start_dispatcher_server"]

#: Dispatcher-side shed tickets kept for /status lookups.
_SHED_TICKET_CAP = 1024


class ShardedService:
    """Frontend dispatcher over ``N`` shard worker processes.

    Parameters
    ----------
    shards:
        Number of worker processes (>= 1).
    workers_per_shard, max_queue, default_solver, store_capacity:
        Forwarded into every shard's :class:`SolveService`.
    store_path:
        Shared append log for all shards (``None`` = memory-only shards).
    shed_policy:
        Cheap-solver chain for the degraded path (default ``"pg"``;
        ``None`` disables shedding — saturation and crashes surface as
        errors).  The same policy string is armed *inside* each shard
        (queue_full shedding close to the queue) and at the dispatcher
        (unreachable-shard shedding).
    shed_in_shards:
        Arm the policy inside shards too (default True).  Disable to
        observe raw 429s at the dispatcher (tests do).
    respawn:
        Restart a crashed shard on first contact failure (default True).
    drain_timeout:
        Per-shard graceful-exit allowance for :meth:`drain`.
    request_timeout:
        Socket timeout for dispatcher→shard HTTP calls; forwarded
        ``wait`` values are clamped below it.
    tracer:
        Optional :class:`~repro.perf.Tracer` for ``svc_shard_*`` /
        ``svc_shed`` / ``svc_drain`` events (dispatcher-side only; shards
        trace their own ``svc_*`` stream).
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        host: str = "127.0.0.1",
        workers_per_shard: int = 1,
        max_queue: int = 64,
        default_solver: str = "fallback",
        store_path: Optional[str] = None,
        store_capacity: int = 1024,
        shed_policy: Optional[str] = "pg",
        shed_in_shards: bool = True,
        respawn: bool = True,
        drain_timeout: float = 30.0,
        request_timeout: float = 120.0,
        tracer=None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        try:
            parse_spec(default_solver)
        except SpecError as exc:
            raise ValueError(
                f"unknown default solver {default_solver!r}: {exc.detail}"
            ) from exc
        self.num_shards = shards
        self.host = host
        self.drain_timeout = drain_timeout
        self.request_timeout = request_timeout
        self.respawn = respawn
        self.tracer = tracer
        self._shed_policy = (
            resolve_shed_policy(shed_policy) if shed_policy else None
        )
        self._config_base = dict(
            num_shards=shards,
            host=host,
            workers=workers_per_shard,
            max_queue=max_queue,
            default_solver=default_solver,
            store_path=store_path,
            store_capacity=store_capacity,
            shed_policy=(shed_policy if (shed_policy and shed_in_shards)
                         else None),
            drain_timeout=drain_timeout,
        )
        self._lock = threading.Lock()
        self._draining = False
        self._ids = itertools.count(1)
        self._shed_tickets: "OrderedDict[str, dict]" = OrderedDict()
        self._stats = {
            "routed": 0, "shed": 0, "respawns": 0, "forward_errors": 0,
            "rejected": 0,
        }
        self._per_shard_routed = [0] * shards
        self._handles: List[ShardHandle] = [
            self._spawn(i) for i in range(shards)
        ]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _spawn(self, index: int) -> ShardHandle:
        config = ShardConfig(index=index, **self._config_base)
        handle = ShardHandle(config, request_timeout=self.request_timeout)
        self._emit("svc_shard_spawn", shard=index, port=handle.port,
                   pid=handle.pid)
        return handle

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful tier shutdown: stop admitting, drain every shard.

        Same contract as :meth:`SolveService.drain
        <repro.service.queue.SolveService.drain>`: submissions after this
        call raise ``RequestRejected("draining", ...)`` (HTTP 503 +
        ``Retry-After``), while every request already forwarded resolves —
        each shard finishes its queued and in-flight solves before
        exiting.  Returns ``True`` when every shard exited gracefully.
        """
        budget = timeout if timeout is not None else self.drain_timeout + 5.0
        with self._lock:
            self._draining = True
        self._emit("svc_drain", shards=self.num_shards, timeout=budget)
        ok = True
        for handle in self._handles:
            graceful = handle.drain(timeout=budget)
            self._emit("svc_shard_exit", shard=handle.index,
                       graceful=graceful)
            ok = ok and graceful
        return ok

    def stop(self) -> None:
        """Hard stop: SIGKILL every shard (the crash path; prefer
        :meth:`drain`)."""
        with self._lock:
            self._draining = True
        for handle in self._handles:
            handle.kill()
            self._emit("svc_shard_exit", shard=handle.index, graceful=False)

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.drain()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def handles(self) -> Tuple[ShardHandle, ...]:
        """The live shard handles, indexed by shard number (read-only)."""
        return tuple(self._handles)

    # ------------------------------------------------------------------ #
    # tracing
    # ------------------------------------------------------------------ #

    def _emit(self, ev: str, **fields) -> None:
        if self.tracer is None:
            return
        with self._lock:
            self.tracer.emit(ev, **fields)

    # ------------------------------------------------------------------ #
    # request path
    # ------------------------------------------------------------------ #

    def submit(
        self,
        problem: CoSchedulingProblem,
        solver: Optional[str] = None,
        budget: Optional[dict] = None,
        priority: int = 1,
        refine: bool = False,
        wait: float = 0.0,
    ) -> dict:
        """Route one request; returns the ticket status document.

        ``budget`` is the wire-shape dict (``{"wall_time": s, ...}``).
        Raises :class:`RequestRejected` while draining, and re-raises
        shard-side rejections as :class:`ServiceError` (except
        ``queue_full``/unreachable, which shed when a policy is armed).
        """
        if solver is not None:
            try:
                parse_spec(solver)
            except SpecError as exc:
                raise RequestRejected(exc.reason, exc.detail) from exc
        fp = problem_fingerprint(problem)
        with self._lock:
            if self._draining:
                self._stats["rejected"] += 1
                raise RequestRejected(
                    "draining",
                    "sharded tier is draining; retry after restart",
                )
        index = shard_for(fp, self.num_shards)
        self._emit("svc_shard_route", shard=index, fingerprint=fp)
        handle = self._handles[index]
        try:
            doc = handle.client.submit(
                problem, solver=solver, budget=budget, priority=priority,
                refine=refine, wait=min(wait, self.request_timeout - 1.0),
            )
        except ServiceError as exc:
            reason = exc.payload.get("reason")
            if reason == "queue_full" and self._shed_policy is not None:
                return self._shed(problem, fp, index, priority,
                                  reason="queue_full")
            with self._lock:
                self._stats["rejected"] += 1
            raise
        except OSError as exc:
            # Connection refused / reset: the shard is gone.  Respawn it
            # (warm, from the shared log) and shed this request.
            with self._lock:
                self._stats["forward_errors"] += 1
            self._handle_dead_shard(index)
            if self._shed_policy is not None:
                return self._shed(problem, fp, index, priority,
                                  reason="shard_down")
            raise ServiceError(
                503, {"error": "shard_down", "shard": index,
                      "detail": str(exc)},
            ) from exc
        with self._lock:
            self._stats["routed"] += 1
            self._per_shard_routed[index] += 1
        doc["id"] = f"s{index}-{doc['id']}"
        doc["shard"] = index
        return doc

    def submit_delta(
        self,
        base_problem: CoSchedulingProblem,
        problem: CoSchedulingProblem,
        solver: Optional[str] = None,
        budget: Optional[dict] = None,
        priority: int = 1,
        refine: bool = False,
        wait: float = 0.0,
    ) -> dict:
        """Route an incremental request by its **base** fingerprint.

        Delta requests go to the shard that owns ``base_problem`` — that
        shard's store holds the warm schedule the repair path starts
        from.  The result is recorded under the *new* problem's
        fingerprint, which may canonically belong to a different shard;
        that is safe (stores merge monotonically, and a later ``/solve``
        for the new fingerprint simply re-solves on its owner shard) but
        means delta results are cached for the base owner's locality, not
        globally.  Shedding and dead-shard handling mirror
        :meth:`submit` — a shed delta degrades to a from-scratch greedy
        solve of the new problem.
        """
        if solver is not None:
            try:
                parse_spec(solver)
            except SpecError as exc:
                raise RequestRejected(exc.reason, exc.detail) from exc
        base_fp = problem_fingerprint(base_problem)
        fp = problem_fingerprint(problem)
        with self._lock:
            if self._draining:
                self._stats["rejected"] += 1
                raise RequestRejected(
                    "draining",
                    "sharded tier is draining; retry after restart",
                )
        index = shard_for(base_fp, self.num_shards)
        self._emit("svc_shard_route", shard=index, fingerprint=base_fp,
                   delta=True)
        handle = self._handles[index]
        try:
            doc = handle.client.delta(
                base_problem, problem, solver=solver, budget=budget,
                priority=priority, refine=refine,
                wait=min(wait, self.request_timeout - 1.0),
            )
        except ServiceError as exc:
            reason = exc.payload.get("reason")
            if reason == "queue_full" and self._shed_policy is not None:
                return self._shed(problem, fp, index, priority,
                                  reason="queue_full")
            with self._lock:
                self._stats["rejected"] += 1
            raise
        except OSError as exc:
            with self._lock:
                self._stats["forward_errors"] += 1
            self._handle_dead_shard(index)
            if self._shed_policy is not None:
                return self._shed(problem, fp, index, priority,
                                  reason="shard_down")
            raise ServiceError(
                503, {"error": "shard_down", "shard": index,
                      "detail": str(exc)},
            ) from exc
        with self._lock:
            self._stats["routed"] += 1
            self._per_shard_routed[index] += 1
        doc["id"] = f"s{index}-{doc['id']}"
        doc["shard"] = index
        return doc

    def _handle_dead_shard(self, index: int) -> None:
        with self._lock:
            if self._draining or not self.respawn:
                return
            if self._handles[index].alive:
                return  # another thread already respawned it
            self._stats["respawns"] += 1
        self._handles[index].kill()  # reap the zombie if any
        self._handles[index] = self._spawn(index)

    def _shed(self, problem: CoSchedulingProblem, fp: str, index: int,
              priority: int, reason: str) -> dict:
        report, spec_used = self._shed_policy.solve(
            problem, budget=Budget(wall_time=1.0))
        ticket_id = f"shed-{next(self._ids)}"
        doc = {
            "id": ticket_id,
            "fingerprint": fp,
            "state": "done",
            "solver": spec_used,
            "priority": priority,
            "disposition": "shed",
            "shed": True,
            "shed_reason": reason,
            "shard": index,
            "objective": report.objective,
            "schedule": schedule_to_dict(report.schedule),
            "solved_by": report.solver,
            "optimal": report.optimal,
            "warm_started": False,
            "time_seconds": report.solve_seconds,
        }
        with self._lock:
            self._stats["shed"] += 1
            self._shed_tickets[ticket_id] = doc
            while len(self._shed_tickets) > _SHED_TICKET_CAP:
                self._shed_tickets.popitem(last=False)
        self._emit("svc_shed", id=ticket_id, fingerprint=fp, shard=index,
                   reason=reason, used=spec_used,
                   objective=report.objective)
        return doc

    # ------------------------------------------------------------------ #
    # status / metrics
    # ------------------------------------------------------------------ #

    def status(self, ticket_id: str) -> dict:
        """Resolve a namespaced ticket id (``s<k>-...`` or ``shed-...``)."""
        if ticket_id.startswith("shed-"):
            with self._lock:
                doc = self._shed_tickets.get(ticket_id)
            if doc is None:
                return {"error": "not_found",
                        "detail": f"no shed ticket {ticket_id!r}"}
            return doc
        if ticket_id.startswith("s") and "-" in ticket_id:
            prefix, _, local = ticket_id.partition("-")
            try:
                index = int(prefix[1:])
            except ValueError:
                index = -1
            if 0 <= index < self.num_shards:
                try:
                    doc = self._handles[index].client.status(local)
                except ServiceError as exc:
                    return exc.payload
                except OSError as exc:
                    return {"error": "shard_down", "shard": index,
                            "detail": str(exc)}
                doc["id"] = ticket_id
                doc["shard"] = index
                return doc
        return {"error": "not_found",
                "detail": f"unroutable ticket id {ticket_id!r}"}

    def health(self) -> dict:
        """Liveness summary: shard count, alive count, draining flag."""
        alive = [h.alive for h in self._handles]
        return {
            "shards": self.num_shards,
            "alive": sum(alive),
            "per_shard": {str(i): a for i, a in enumerate(alive)},
            "draining": self._draining,
        }

    def metrics(self) -> dict:
        """Dispatcher counters + per-shard metrics + summed aggregates."""
        with self._lock:
            stats = dict(self._stats)
            per_shard_routed = list(self._per_shard_routed)
        shard_metrics: Dict[str, object] = {}
        aggregate: Dict[str, float] = {}
        for handle in self._handles:
            key = str(handle.index)
            try:
                m = handle.client.metrics()
            except (ServiceError, OSError) as exc:
                shard_metrics[key] = {"error": "unreachable",
                                      "detail": str(exc)}
                continue
            shard_metrics[key] = m
            for k, v in m.get("requests", {}).items():
                if isinstance(v, (int, float)):
                    aggregate[k] = aggregate.get(k, 0) + v
        return {
            "dispatcher": {
                "shards": self.num_shards,
                "draining": self._draining,
                "shed_policy": (self._shed_policy.describe()
                                if self._shed_policy else None),
                **stats,
                "per_shard_routed": {
                    str(i): n for i, n in enumerate(per_shard_routed)
                },
            },
            "aggregate_requests": aggregate,
            "shards": shard_metrics,
        }


# ---------------------------------------------------------------------- #
# HTTP frontend
# ---------------------------------------------------------------------- #


def _budget_doc(d: Optional[dict]) -> Optional[dict]:
    """Validate the wire budget shape (the shard re-validates anyway)."""
    if not d:
        return None
    unknown = set(d) - {"wall_time", "max_expanded", "max_weight_evals"}
    if unknown:
        raise ValueError(f"unknown budget field(s): {sorted(unknown)}")
    return d


class _DispatcherHandler(BaseHTTPRequestHandler):
    """Same wire surface as the single-process server, plus /health."""

    server: "DispatcherHTTPServer"
    protocol_version = "HTTP/1.1"

    def _drain_body(self) -> None:
        remaining = int(self.headers.get("Content-Length") or 0)
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                break
            remaining -= len(chunk)

    def _reply(self, status: int, payload: dict,
               retry_after: Optional[int] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:  # pragma: no cover
        if self.server.verbose:
            super().log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        sharded = self.server.sharded
        if self.path == "/metrics":
            self._reply(200, sharded.metrics())
            return
        if self.path == "/health":
            self._reply(200, sharded.health())
            return
        if self.path.startswith("/status/"):
            doc = sharded.status(self.path[len("/status/"):])
            if doc.get("error") == "not_found":
                self._reply(404, doc)
            elif doc.get("error") == "shard_down":
                self._reply(503, doc)
            else:
                self._reply(200, doc)
            return
        self._reply(404, {"error": "not_found",
                          "detail": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path not in ("/solve", "/delta"):
            self._drain_body()
            self._reply(404, {"error": "not_found",
                              "detail": f"no route {self.path!r}"})
            return
        sharded = self.server.sharded
        try:
            length = int(self.headers.get("Content-Length", 0))
            doc = json.loads(self.rfile.read(length) or b"{}")
            problem = problem_from_dict(doc["problem"])
            base_problem = None
            if self.path == "/delta":
                base_problem = problem_from_dict(doc["base_problem"])
            budget = _budget_doc(doc.get("budget"))
            wait = float(doc.get("wait", 0.0))
            priority = int(doc.get("priority", 1))
            refine = bool(doc.get("refine", False))
            solver = doc.get("solver")
        except (KeyError, TypeError, ValueError, CodecError) as exc:
            self._reply(400, {"error": "bad_request", "detail": str(exc)})
            return
        try:
            if base_problem is not None:
                ticket = sharded.submit_delta(
                    base_problem, problem, solver=solver, budget=budget,
                    priority=priority, refine=refine, wait=wait)
            else:
                ticket = sharded.submit(problem, solver=solver,
                                        budget=budget, priority=priority,
                                        refine=refine, wait=wait)
        except RequestRejected as exc:
            if exc.reason == "draining":
                self._reply(503, exc.to_dict(),
                            retry_after=self.server.retry_after)
                return
            bad_spec = ("unknown_solver", "bad_spec", "bad_param",
                        "unsupported_scenario")
            status = 400 if exc.reason in bad_spec else 429
            self._reply(status, exc.to_dict())
            return
        except ServiceError as exc:
            self._reply(exc.status, exc.payload)
            return
        self._reply(200 if ticket.get("state") in ("done", "failed")
                    else 202, ticket)


class DispatcherHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` in front of one
    :class:`ShardedService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], sharded: ShardedService,
                 verbose: bool = False, retry_after: int = 2):
        super().__init__(address, _DispatcherHandler)
        self.sharded = sharded
        self.verbose = verbose
        self.retry_after = retry_after

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_dispatcher_server(
    sharded: ShardedService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> DispatcherHTTPServer:
    """Serve the dispatcher on a daemon thread; returns the server.

    Mirrors :func:`~repro.service.server.start_http_server`: ``port=0``
    binds an ephemeral port; stop with ``server.shutdown()`` followed by
    ``sharded.drain()``.
    """
    server = DispatcherHTTPServer((host, port), sharded, verbose=verbose)
    thread = threading.Thread(target=server.serve_forever,
                              name="cosched-dispatcher", daemon=True)
    thread.start()
    return server
