"""Fingerprint-keyed memo store for best-known schedules.

A :class:`SolutionStore` maps a problem fingerprint (see
:func:`repro.service.codec.problem_fingerprint`) to the best schedule any
solver has produced for that problem, together with its objective, solver
provenance, and optimality flag.  Lookups either answer a request outright
(a *cache hit* — proven-optimal entries are always final) or hand back an
incumbent to :func:`warm-start <repro.solvers.base.Solver.solve>` a fresh
run.

Because the fingerprint is relabeling-invariant, schedules are stored in
**canonical pid labeling** (:func:`repro.service.codec.schedule_to_canonical`);
consumers translate an entry back into their own problem's labeling with
:func:`repro.service.codec.schedule_from_canonical` before using it.  The
:class:`~repro.service.queue.SolveService` does this per ticket.

The store is an in-memory LRU bounded by ``capacity``.  Persistence is
delegated to a :class:`~repro.service.backends.StoreBackend`: existing
entries are replayed through the monotone merge on construction, and every
accepted update is appended.  ``path=`` remains as the convenience spelling
for an :class:`~repro.service.backends.AppendLogBackend` at that path, so a
restarted service keeps its memo — including across the shard processes of
the multi-process tier, which share one append log (each fingerprint
belongs to exactly one shard, so shards never race on a key).

``record()`` is monotone: an update is accepted only if the fingerprint is
new, the new objective is strictly better, or the new entry proves
optimality — a worse re-solve can never clobber a better cached schedule.

All public methods take the store's lock, so one instance can back many
worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.schedule import CoSchedule
from .codec import schedule_from_dict, schedule_to_dict

__all__ = ["StoreEntry", "SolutionStore"]


@dataclass(frozen=True)
class StoreEntry:
    """Best-known solution for one problem fingerprint."""

    fingerprint: str
    schedule: CoSchedule
    objective: float
    solver: str
    optimal: bool = False

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "schedule": schedule_to_dict(self.schedule),
            "objective": self.objective,
            "solver": self.solver,
            "optimal": self.optimal,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StoreEntry":
        return cls(
            fingerprint=str(d["fingerprint"]),
            schedule=schedule_from_dict(d["schedule"]),
            objective=float(d["objective"]),
            solver=str(d.get("solver", "?")),
            optimal=bool(d.get("optimal", False)),
        )


class SolutionStore:
    """In-memory LRU memo of :class:`StoreEntry` over a pluggable backend.

    Parameters
    ----------
    capacity:
        Maximum resident entries; the least-recently-*used* entry is
        evicted first (a lookup refreshes recency).
    path:
        Convenience: persist through an
        :class:`~repro.service.backends.AppendLogBackend` rooted at this
        JSONL file (replayed on construction; every accepted update
        appends a line).  Mutually exclusive with ``backend``.
    backend:
        An explicit :class:`~repro.service.backends.StoreBackend`.  The
        store owns it (``close()`` closes it).
    """

    def __init__(self, capacity: int = 1024, path: Optional[str] = None,
                 backend=None):
        from .backends import AppendLogBackend, MemoryBackend

        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if path is not None and backend is not None:
            raise ValueError("give path or backend, not both")
        self.capacity = capacity
        self.path = path
        if backend is None:
            backend = (AppendLogBackend(path) if path is not None
                       else MemoryBackend())
        self.backend = backend
        self._entries: "OrderedDict[str, StoreEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.updates = 0
        for entry in self.backend.replay():
            # Replay runs through the monotone merge, so duplicate or
            # out-of-order log lines (multi-process appenders, repeated
            # restarts) converge to the same state.
            self._record_locked(entry, persist=False)
        # Replay counts neither as traffic nor as updates.
        self.hits = self.misses = self.updates = 0

    # ------------------------------------------------------------------ #

    def lookup(self, fingerprint: str) -> Optional[StoreEntry]:
        """Return the cached entry (refreshing LRU recency), or ``None``."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            return entry

    def peek(self, fingerprint: str) -> Optional[StoreEntry]:
        """Like :meth:`lookup` but without touching recency or counters."""
        with self._lock:
            return self._entries.get(fingerprint)

    def record(
        self,
        fingerprint: str,
        schedule: CoSchedule,
        objective: float,
        solver: str,
        optimal: bool = False,
    ) -> bool:
        """Offer a solution; returns True if it became the stored entry.

        Monotone merge: accepted iff the fingerprint is unknown, the
        objective strictly improves, or the offer upgrades an equal-quality
        entry to proven-optimal.
        """
        entry = StoreEntry(fingerprint, schedule, float(objective),
                           solver, bool(optimal))
        with self._lock:
            return self._record_locked(entry, persist=True)

    def _record_locked(self, entry: StoreEntry, persist: bool) -> bool:
        old = self._entries.get(entry.fingerprint)
        if old is not None:
            improves = entry.objective < old.objective
            upgrades = (entry.optimal and not old.optimal
                        and entry.objective <= old.objective)
            if not (improves or upgrades):
                return False
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self.updates += 1
        if persist:
            self.backend.append(entry)
        return True

    # ------------------------------------------------------------------ #

    def compact(self) -> None:
        """Fold the backend's durable state down to the live entries.

        Only meaningful for log-structured backends.  Safe against
        concurrent appenders (the backend merges the log and only
        truncates when nothing new landed), but the log only actually
        shrinks while quiescent — see the drain/restart runbook in
        ``docs/DEPLOYMENT.md``.
        """
        with self._lock:
            entries = list(self._entries.values())
        self.backend.compact(entries)

    def close(self) -> None:
        """Release the backend's file handles (appends re-open lazily)."""
        self.backend.close()

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction counters plus the derived hit rate."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "backend": self.backend.describe(),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "evictions": self.evictions,
                "updates": self.updates,
            }
