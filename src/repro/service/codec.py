"""Canonical, versioned JSON round-trip for problems and schedules.

Two distinct encodings, for two distinct jobs:

* the **plain** encoding (:func:`problem_to_dict` / :func:`problem_from_dict`)
  preserves everything reconstruction needs — job names, workload order,
  catalog profile names, full model parameter arrays — so a problem saved
  with ``cosched solve --save-problem`` reloads exactly;
* the **canonical** encoding (:func:`canonical_problem`) exists only to be
  hashed: job names are dropped, jobs are re-ordered by a content-derived
  sort key, per-process model parameters are permuted along with them, and
  imaginary padding (semantically inert by construction — the degradation
  path filters it out) is excluded.  :func:`problem_fingerprint` is the
  SHA-256 of its compact JSON form.

The fingerprint is *content-addressed*: two problems built from the same
jobs in a different order (process/job relabeling) hash identically, and
changing any parameter that can affect any degradation — a miss rate, a
halo volume, a cache size, the core count — changes the hash.  The
guarantee is one-sided in the degenerate direction: problems whose jobs
are parameter-for-parameter indistinguishable always collapse to one
fingerprint, while exotic isomorphisms of a pairwise
:class:`~repro.core.degradation.MatrixDegradationModel` between *tied*
job descriptors may conservatively hash apart (a memo key may treat equal
things as distinct, never distinct things as equal).

Problems carrying a ``node_extra_cost`` hook (an arbitrary callable) are
not serializable and raise :class:`CodecError`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm.model import CommunicationModel
from ..comm.topology import Decomposition
from ..core.degradation import (
    AsymmetricContentionModel,
    MatrixDegradationModel,
    MissRatePressureModel,
    SDCDegradationModel,
)
from ..core.constraints import constraint_from_dict, constraint_to_dict
from ..core.jobs import Job, JobKind, Workload
from ..core.machine import CacheSpec, ClusterSpec, MachineSpec
from ..core.problem import CoSchedulingProblem
from ..core.schedule import CoSchedule
from ..workloads.catalog import ProgramProfile

__all__ = [
    "CodecError",
    "FORMAT_VERSION",
    "FORMAT_VERSION_SCENARIO",
    "problem_to_dict",
    "problem_from_dict",
    "save_problem",
    "load_problem",
    "canonical_problem",
    "canonical_pid_map",
    "schedule_to_canonical",
    "schedule_from_canonical",
    "problem_fingerprint",
    "schedule_to_dict",
    "schedule_from_dict",
]

#: Version stamped into every encoded document; bump on schema changes.
#: Version 1 is the homogeneous encoding; version 2 adds per-machine
#: rosters, scenario constraints and machine scaling.  Homogeneous
#: problems still emit version-1 documents (byte-identical to
#: pre-scenario builds, so fingerprints and caches carry over); the
#: version-2 shape is reserved for problems that need it.
FORMAT_VERSION = 1
FORMAT_VERSION_SCENARIO = 2
_READ_VERSIONS = (FORMAT_VERSION, FORMAT_VERSION_SCENARIO)


class CodecError(ValueError):
    """A problem/schedule cannot be encoded or a document cannot be decoded."""


# --------------------------------------------------------------------- #
# small helpers
# --------------------------------------------------------------------- #


def _f(x) -> float:
    return float(x)


def _floats(xs) -> List[float]:
    return [float(x) for x in xs]


def _canonical_json(obj) -> str:
    """Deterministic compact JSON (sorted keys, no NaN/Inf)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


# --------------------------------------------------------------------- #
# cluster / jobs
# --------------------------------------------------------------------- #


def _machine_to_dict(m: MachineSpec) -> dict:
    return {
        "name": m.name,
        "cores": m.cores,
        "clock_hz": _f(m.clock_hz),
        "miss_penalty_cycles": _f(m.miss_penalty_cycles),
        "cache": {
            "size_bytes": m.shared_cache.size_bytes,
            "associativity": m.shared_cache.associativity,
            "line_bytes": m.shared_cache.line_bytes,
        },
    }


def _machine_from_dict(m: dict) -> MachineSpec:
    c = m["cache"]
    return MachineSpec(
        name=str(m.get("name", "machine")),
        cores=int(m["cores"]),
        shared_cache=CacheSpec(
            size_bytes=int(c["size_bytes"]),
            associativity=int(c["associativity"]),
            line_bytes=int(c.get("line_bytes", 64)),
        ),
        clock_hz=float(m["clock_hz"]),
        miss_penalty_cycles=float(m["miss_penalty_cycles"]),
    )


def _cluster_to_dict(cluster: ClusterSpec) -> dict:
    out = {
        "machine": _machine_to_dict(cluster.machine),
        "bandwidth_bytes_per_s": _f(cluster.bandwidth_bytes_per_s),
    }
    if cluster.machines:
        # Version-2 roster form: the explicit machine list is authoritative,
        # "machine" stays as the reference spec for forward readability.
        out["machines"] = [_machine_to_dict(m) for m in cluster.machines]
    return out


def _cluster_from_dict(d: dict) -> ClusterSpec:
    bandwidth = float(d["bandwidth_bytes_per_s"])
    if d.get("machines"):
        roster = tuple(_machine_from_dict(m) for m in d["machines"])
        return ClusterSpec.of_machines(roster, bandwidth_bytes_per_s=bandwidth)
    return ClusterSpec(machine=_machine_from_dict(d["machine"]),
                       bandwidth_bytes_per_s=bandwidth)


def _topology_to_dict(topo: Decomposition) -> dict:
    return {
        "dims": list(topo.dims),
        "halo_bytes": _floats(topo.halo_bytes),
        "rank_to_pos": (None if topo.rank_to_pos is None
                        else list(topo.rank_to_pos)),
        "periodic": bool(topo.periodic),
    }


def _topology_from_dict(d: dict) -> Decomposition:
    return Decomposition(
        dims=tuple(int(x) for x in d["dims"]),
        halo_bytes=tuple(float(x) for x in d["halo_bytes"]),
        rank_to_pos=(None if d.get("rank_to_pos") is None
                     else tuple(int(x) for x in d["rank_to_pos"])),
        periodic=bool(d.get("periodic", False)),
    )


def _job_to_dict(job: Job) -> dict:
    out = {
        "name": job.name,
        "kind": job.kind.value,
        "nprocs": job.nprocs,
        "profile_name": job.profile_name,
        "topology": None,
    }
    if job.topology is not None:
        if not isinstance(job.topology, Decomposition):
            raise CodecError(
                f"job {job.name!r}: only Decomposition topologies serialize"
            )
        out["topology"] = _topology_to_dict(job.topology)
    return out


def _job_from_dict(job_id: int, d: dict) -> Job:
    topo = None if d.get("topology") is None else _topology_from_dict(d["topology"])
    return Job(
        job_id=job_id,
        name=str(d["name"]),
        kind=JobKind(d["kind"]),
        nprocs=int(d["nprocs"]),
        profile_name=str(d.get("profile_name", "")),
        topology=topo,
    )


# --------------------------------------------------------------------- #
# degradation models
# --------------------------------------------------------------------- #


def _profile_to_dict(profile) -> dict:
    if not isinstance(profile, ProgramProfile):
        raise CodecError(
            f"only ProgramProfile instances serialize, got {type(profile).__name__}"
        )
    return {
        "cpu_cycles": _f(profile.cpu_cycles),
        "accesses": _f(profile.accesses),
        "miss_rate": _f(profile.miss_rate),
        "reuse_decay": _f(profile.reuse_decay),
    }


def _model_to_dict(problem: CoSchedulingProblem) -> dict:
    model = problem.model
    if isinstance(model, SDCDegradationModel):
        needed = sorted({
            job.profile_name for job in problem.workload.jobs
        })
        return {
            "type": "sdc",
            "profiles": {
                name: _profile_to_dict(model.profiles[name]) for name in needed
            },
        }
    if isinstance(model, MissRatePressureModel):
        return {
            "type": "miss_rate",
            "miss_rates": _floats(model.miss_rates),
            "kappa": _f(model.kappa),
            "saturation": None if model.saturation is None else _f(model.saturation),
            "single_times": None if model._single is None else _floats(model._single),
        }
    if isinstance(model, AsymmetricContentionModel):
        return {
            "type": "asymmetric",
            "sensitivities": _floats(model.s),
            "aggressiveness": _floats(model.a),
            "kappa": _f(model.kappa),
            "saturation": None if model.saturation is None else _f(model.saturation),
            "single_times": None if model._single is None else _floats(model._single),
        }
    if isinstance(model, MatrixDegradationModel):
        exact = sorted(
            [int(pid), sorted(int(q) for q in coset), _f(d)]
            for (pid, coset), d in model.exact.items()
        )
        return {
            "type": "matrix",
            "pairwise": (None if model.pairwise is None
                         else [_floats(row) for row in model.pairwise]),
            "exact": exact,
            "single_times": None if model._single is None else _floats(model._single),
            "n": model.n,
        }
    raise CodecError(
        f"degradation model {type(model).__name__} has no codec; "
        "supported: SDC, MissRatePressure, AsymmetricContention, Matrix"
    )


def _model_from_dict(d: dict, workload: Workload, cluster: ClusterSpec):
    kind = d.get("type")
    if kind == "sdc":
        profiles = {
            name: ProgramProfile(name=name, **{
                k: float(v) for k, v in params.items()
            })
            for name, params in d["profiles"].items()
        }
        return SDCDegradationModel(workload, cluster.machine, profiles)
    if kind == "miss_rate":
        return MissRatePressureModel(
            miss_rates=d["miss_rates"],
            kappa=float(d["kappa"]),
            saturation=(None if d.get("saturation") is None
                        else float(d["saturation"])),
            single_times=d.get("single_times"),
        )
    if kind == "asymmetric":
        return AsymmetricContentionModel(
            sensitivities=d["sensitivities"],
            aggressiveness=d["aggressiveness"],
            kappa=float(d["kappa"]),
            saturation=(None if d.get("saturation") is None
                        else float(d["saturation"])),
            single_times=d.get("single_times"),
        )
    if kind == "matrix":
        exact = {
            (int(pid), frozenset(int(q) for q in coset)): float(v)
            for pid, coset, v in d.get("exact", [])
        }
        return MatrixDegradationModel(
            pairwise=(None if d.get("pairwise") is None
                      else np.asarray(d["pairwise"], dtype=float)),
            exact=exact or None,
            single_times=d.get("single_times"),
            n=d.get("n"),
        )
    raise CodecError(f"unknown model type {kind!r}")


# --------------------------------------------------------------------- #
# plain round-trip
# --------------------------------------------------------------------- #


def problem_to_dict(problem: CoSchedulingProblem) -> dict:
    """Encode a problem as a JSON-safe dict (the plain, faithful form).

    Homogeneous, unconstrained problems emit the version-1 document —
    byte-identical to pre-scenario builds.  Problems with a machine
    roster, scenario constraints or machine scaling emit version 2.
    """
    if problem.node_extra_cost is not None:
        raise CodecError(
            "problems with a node_extra_cost hook (an arbitrary callable) "
            "cannot be serialized"
        )
    scenario = problem.is_scenario or bool(problem.cluster.machines)
    out = {
        "format": "repro.problem",
        "version": FORMAT_VERSION_SCENARIO if scenario else FORMAT_VERSION,
        "cluster": _cluster_to_dict(problem.cluster),
        "jobs": [_job_to_dict(job) for job in problem.workload.jobs],
        "model": _model_to_dict(problem),
        "comm": problem.comm is not None,
    }
    if scenario:
        out["constraints"] = [
            constraint_to_dict(c) for c in problem.constraints
        ]
        if any(s != 1.0 for s in problem.machine_scale):
            out["machine_scale"] = _floats(problem.machine_scale)
    return out


def problem_from_dict(d: dict) -> CoSchedulingProblem:
    """Rebuild a problem from :func:`problem_to_dict` output (either
    version — old homogeneous payloads still decode)."""
    if d.get("format") != "repro.problem":
        raise CodecError(
            f"not a repro.problem document (format={d.get('format')!r})"
        )
    version = d.get("version")
    if version not in _READ_VERSIONS:
        raise CodecError(
            f"unsupported problem format version {version!r} "
            f"(this build reads versions {sorted(_READ_VERSIONS)})"
        )
    cluster = _cluster_from_dict(d["cluster"])
    jobs = [_job_from_dict(i, jd) for i, jd in enumerate(d["jobs"])]
    if cluster.machines:
        # Roster problems never pad: capacities must cover the workload.
        workload = Workload(jobs)
    else:
        workload = Workload(jobs, cores_per_machine=cluster.cores)
    model = _model_from_dict(d["model"], workload, cluster)
    # Per-pid parameter arrays must cover the padded workload.
    for key in ("miss_rates", "sensitivities", "single_times"):
        arr = d["model"].get(key)
        if arr is not None and len(arr) != workload.n:
            raise CodecError(
                f"model.{key} has {len(arr)} entries for a workload of "
                f"{workload.n} processes (including imaginary padding)"
            )
    comm = None
    if d.get("comm"):
        comm = CommunicationModel(workload, cluster.bandwidth_bytes_per_s)
    try:
        constraints = [
            constraint_from_dict(cd) for cd in d.get("constraints", ())
        ]
    except ValueError as exc:
        raise CodecError(f"invalid constraint document: {exc}") from exc
    scale = d.get("machine_scale")
    return CoSchedulingProblem(
        workload, cluster, model, comm,
        constraints=constraints,
        machine_scaling=None if scale is None else [float(s) for s in scale],
    )


def save_problem(problem: CoSchedulingProblem, path: str) -> str:
    """Write the plain encoding to ``path``; returns the fingerprint."""
    doc = problem_to_dict(problem)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return problem_fingerprint(problem)


def load_problem(path: str) -> CoSchedulingProblem:
    """Read a problem saved by :func:`save_problem`."""
    with open(path, "r", encoding="utf-8") as fh:
        return problem_from_dict(json.load(fh))


# --------------------------------------------------------------------- #
# canonicalization + fingerprint
# --------------------------------------------------------------------- #


def _job_param_descriptor(problem: CoSchedulingProblem, job: Job) -> list:
    """Per-process model parameters of ``job``'s ranks, in rank order.

    This is the content that replaces the job's *name* in the canonical
    form: whatever the degradation model knows about these processes.
    """
    model = problem.model
    pids = problem.workload.processes_of(job.job_id)
    if isinstance(model, SDCDegradationModel):
        prof = _profile_to_dict(model.profiles[job.profile_name])
        return [sorted(prof.items())]  # identical for every rank
    if isinstance(model, MissRatePressureModel):
        return [[_f(model.miss_rates[p]), _f(model.single_time(p))]
                for p in pids]
    if isinstance(model, AsymmetricContentionModel):
        return [[_f(model.s[p]), _f(model.a[p]), _f(model.single_time(p))]
                for p in pids]
    if isinstance(model, MatrixDegradationModel):
        real = [p for p in range(problem.n)
                if not problem.workload.is_imaginary(p)]
        out = []
        for p in pids:
            row = ([] if model.pairwise is None else
                   sorted(_f(model.pairwise[p, q]) for q in real if q != p))
            col = ([] if model.pairwise is None else
                   sorted(_f(model.pairwise[q, p]) for q in real if q != p))
            mine = sorted(
                [len(coset), _f(v)] for (pid, coset), v in model.exact.items()
                if pid == p
            )
            out.append([_f(model.single_time(p)), row, col, mine])
        return out
    raise CodecError(f"model {type(model).__name__} has no canonical form")


def _canonical_jobs(problem: CoSchedulingProblem) -> Tuple[list, Dict[int, int]]:
    """Sorted job descriptors plus the real-pid relabeling they induce.

    Jobs are sorted by ``(kind, nprocs, topology, per-rank parameters)``;
    process identities are re-assigned in that order (each job's ranks
    stay in rank order).  Returns ``(jobs_canon, new_pid_of)`` where
    ``new_pid_of`` maps every *real* pid to its canonical pid.
    """
    wl = problem.workload
    descriptors = []
    for job in wl.jobs:
        topo = (None if job.topology is None
                else sorted(_topology_to_dict(job.topology).items()))
        desc = [job.kind.value, job.nprocs, topo,
                _job_param_descriptor(problem, job)]
        if problem.constraints:
            # Per-pid constraint data (bandwidth demands, cache
            # footprints, ...) distinguishes jobs whose model parameters
            # tie, so the canonical order stays relabeling-invariant.
            # Only added when constraints exist — the homogeneous shape
            # (and its fingerprints) must stay byte-identical.
            desc.append([
                [[c.kind] + [getattr(c, f)[p] for f in c.per_pid_fields]
                 for c in problem.constraints]
                for p in wl.processes_of(job.job_id)
            ])
        descriptors.append((_canonical_json(desc), job.job_id, desc))
    descriptors.sort(key=lambda t: (t[0], t[1]))

    new_pid_of: Dict[int, int] = {}
    jobs_canon = []
    for _, job_id, desc in descriptors:
        for pid in wl.processes_of(job_id):
            new_pid_of[pid] = len(new_pid_of)
        jobs_canon.append(desc)
    return jobs_canon, new_pid_of


def canonical_pid_map(problem: CoSchedulingProblem) -> List[int]:
    """``pid -> canonical pid`` over *all* ``n`` processes.

    Real processes follow the canonical job order of
    :func:`canonical_problem`; imaginary padding (interchangeable by
    construction — zero degradation either way) fills the tail slots in
    ascending original-pid order.  The map is a bijection on ``0..n-1``,
    so schedules can be translated losslessly between a problem's own
    labeling and the canonical one — which is how the solution store
    serves one cached schedule to every relabeling of the same problem.
    """
    _, new_pid_of = _canonical_jobs(problem)
    wl = problem.workload
    out = [-1] * wl.n
    for old, new in new_pid_of.items():
        out[old] = new
    nxt = len(new_pid_of)
    for pid in range(wl.n):
        if wl.is_imaginary(pid):
            out[pid] = nxt
            nxt += 1
    return out


def schedule_to_canonical(problem: CoSchedulingProblem,
                          schedule: CoSchedule) -> CoSchedule:
    """Re-express ``schedule`` (in ``problem``'s labeling) in canonical pids.

    Scenario schedules are machine-bound, so their groups are also
    permuted into the problem's canonical machine order (the order the
    fingerprint's roster uses) — two relabelings of the same scenario
    problem share one canonical schedule.
    """
    m = canonical_pid_map(problem)
    if schedule.capacities is not None:
        order = problem.canonical_machine_order()
        return CoSchedule.from_machine_groups(
            [[m[p] for p in schedule.groups[k]] for k in order],
            capacities=[problem.capacities[k] for k in order],
        )
    return CoSchedule.from_groups(
        [[m[p] for p in g] for g in schedule.groups], u=schedule.u
    )


def schedule_from_canonical(problem: CoSchedulingProblem,
                            schedule: CoSchedule) -> CoSchedule:
    """Re-express a canonical-labeled ``schedule`` in ``problem``'s own pids."""
    m = canonical_pid_map(problem)
    inv = [0] * len(m)
    for old, new in enumerate(m):
        inv[new] = old
    if schedule.capacities is not None:
        order = problem.canonical_machine_order()
        groups = [()] * problem.n_machines
        for slot, k in enumerate(order):
            groups[k] = [inv[p] for p in schedule.groups[slot]]
        return problem.make_schedule(groups)
    return CoSchedule.from_groups(
        [[inv[p] for p in g] for g in schedule.groups], u=schedule.u
    )


def canonical_problem(problem: CoSchedulingProblem) -> dict:
    """The relabeling-invariant structure :func:`problem_fingerprint` hashes.

    Jobs are sorted by ``(kind, nprocs, topology, per-rank parameters)``;
    job and process identities are re-assigned in that order; pid-indexed
    model data (pairwise matrices, exact tables) is permuted accordingly;
    names and imaginary padding are dropped.
    """
    if problem.node_extra_cost is not None:
        raise CodecError("problems with node_extra_cost do not fingerprint")
    wl = problem.workload
    model = problem.model

    jobs_canon, new_pid_of = _canonical_jobs(problem)

    model_canon: dict = {"type": None}
    if isinstance(model, SDCDegradationModel):
        model_canon = {"type": "sdc"}
    elif isinstance(model, MissRatePressureModel):
        model_canon = {
            "type": "miss_rate",
            "kappa": _f(model.kappa),
            "saturation": None if model.saturation is None else _f(model.saturation),
        }
    elif isinstance(model, AsymmetricContentionModel):
        model_canon = {
            "type": "asymmetric",
            "kappa": _f(model.kappa),
            "saturation": None if model.saturation is None else _f(model.saturation),
        }
    elif isinstance(model, MatrixDegradationModel):
        # Permute pid-indexed tables into canonical order (real pids only;
        # padding rows are unreachable through the degradation path).
        n_canon = len(new_pid_of)
        old_of_new = [0] * n_canon
        for old, new in new_pid_of.items():
            old_of_new[new] = old
        pairwise = None
        if model.pairwise is not None:
            pairwise = [
                [_f(model.pairwise[old_of_new[i], old_of_new[j]])
                 for j in range(n_canon)]
                for i in range(n_canon)
            ]
        exact = sorted(
            [new_pid_of[pid], sorted(new_pid_of[q] for q in coset), _f(v)]
            for (pid, coset), v in model.exact.items()
            if pid in new_pid_of and all(q in new_pid_of for q in coset)
        )
        model_canon = {"type": "matrix", "pairwise": pairwise, "exact": exact}
    else:
        raise CodecError(f"model {type(model).__name__} has no canonical form")

    m = problem.cluster.machine
    out = {
        "format": "repro.problem.canonical",
        "version": FORMAT_VERSION,
        "u": problem.u,
        "machine": [
            m.shared_cache.size_bytes, m.shared_cache.associativity,
            m.shared_cache.line_bytes, _f(m.clock_hz),
            _f(m.miss_penalty_cycles),
        ],
        "bandwidth": (_f(problem.cluster.bandwidth_bytes_per_s)
                      if problem.comm is not None else None),
        "comm": problem.comm is not None,
        "jobs": jobs_canon,
        "model": model_canon,
    }
    if problem.is_scenario:
        # Scenario extension: the machine roster in canonical slot order
        # (capacity-descending, then identity — invariant under machine
        # relabeling) and the constraints re-expressed in canonical pids
        # and canonical machine order.  Homogeneous problems never reach
        # this branch, so their canonical bytes are unchanged.
        out["version"] = FORMAT_VERSION_SCENARIO
        order = problem.canonical_machine_order()
        out["machines"] = [
            [
                problem.machines[k].cores,
                problem.machines[k].shared_cache.size_bytes,
                problem.machines[k].shared_cache.associativity,
                problem.machines[k].shared_cache.line_bytes,
                _f(problem.machines[k].clock_hz),
                _f(problem.machines[k].miss_penalty_cycles),
                _f(problem.machine_scale[k]),
            ]
            for k in order
        ]
        constraints_canon = [
            constraint_to_dict(
                c.relabeled(
                    [new_pid_of[p] for p in range(problem.n)]
                ).machines_reordered(order)
            )
            for c in problem.constraints
        ]
        out["constraints"] = sorted(
            constraints_canon, key=_canonical_json
        )
    return out


def problem_fingerprint(problem: CoSchedulingProblem) -> str:
    """Content-addressed SHA-256 hex digest of the canonical form."""
    return hashlib.sha256(
        _canonical_json(canonical_problem(problem)).encode("utf-8")
    ).hexdigest()


# --------------------------------------------------------------------- #
# schedules
# --------------------------------------------------------------------- #


def schedule_to_dict(schedule: CoSchedule) -> dict:
    """Encode a schedule (canonical already — groups sorted by construction).

    Machine-bound scenario schedules carry their per-machine
    ``capacities`` and stamp version 2; homogeneous schedules keep the
    version-1 bytes.
    """
    out = {
        "format": "repro.schedule",
        "version": FORMAT_VERSION,
        "u": schedule.u,
        "groups": [list(g) for g in schedule.groups],
    }
    if schedule.capacities is not None:
        out["version"] = FORMAT_VERSION_SCENARIO
        out["capacities"] = list(schedule.capacities)
    return out


def schedule_from_dict(d: dict) -> CoSchedule:
    """Rebuild (and re-validate) a schedule from :func:`schedule_to_dict`
    (either version)."""
    if d.get("format") != "repro.schedule":
        raise CodecError(
            f"not a repro.schedule document (format={d.get('format')!r})"
        )
    if d.get("version") not in _READ_VERSIONS:
        raise CodecError(
            f"unsupported schedule format version {d.get('version')!r}"
        )
    try:
        if d.get("capacities") is not None:
            return CoSchedule.from_machine_groups(
                [[int(p) for p in g] for g in d["groups"]],
                capacities=[int(c) for c in d["capacities"]],
            )
        return CoSchedule.from_groups(
            [[int(p) for p in g] for g in d["groups"]], u=int(d["u"])
        )
    except ValueError as exc:
        raise CodecError(f"invalid schedule document: {exc}") from exc
