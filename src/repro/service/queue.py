"""Threaded solve queue: admission control, priority lanes, coalescing.

:class:`SolveService` turns the one-shot ``Solver.solve`` call into a
long-lived request pipeline:

1. **fingerprint** the incoming problem (:mod:`repro.service.codec`);
2. **cache** — if the :class:`~repro.service.store.SolutionStore` already
   holds an answer (always final when proven optimal), resolve the request
   immediately with zero solver work (``svc_cache_hit``);
3. **coalesce** — if an identical problem is already queued or solving,
   attach this request to that in-flight solve instead of enqueuing a
   duplicate (``svc_coalesce``);
4. **admit** — reject, with a structured reason, requests that name a
   solver spec the :mod:`repro.runtime` registry cannot resolve, would
   overflow the bounded queue, or whose budgets exceed the per-request /
   global caps (``svc_reject``); otherwise enqueue into a priority lane
   (``svc_enqueue``);
5. **solve** — a worker thread pops the highest-priority request, seeds
   the solver with the store's incumbent when one exists
   (``svc_warm_start``), runs it under the request budget, records the
   result back into the store, and resolves the request plus every
   coalesced follower.

Two service-tier behaviors ride on the same pipeline: with a
``shed_policy`` armed, a submission that would be rejected ``queue_full``
is instead **shed** — answered synchronously by a cheap registry
heuristic, marked ``shed=True`` (``svc_shed``) — and :meth:`SolveService.drain`
implements the graceful-shutdown contract shared with the sharded tier
(``svc_drain``): stop admitting (reason ``"draining"``), finish every
admitted ticket, then :meth:`~SolveService.stop`.

Lower ``priority`` numbers are served first (0 = interactive, larger =
batch).  All bookkeeping is lock-protected; tickets are resolved through
a per-ticket :class:`threading.Event`, so callers ``wait()`` without
polling.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Dict, List, Optional

from ..core.problem import CoSchedulingProblem
from ..core.schedule import CoSchedule
from ..perf import kernels as _kernels
from ..perf.counters import PerfCounters
from ..runtime import (
    SpecError,
    create_solver,
    get_info,
    parse_spec,
    resolve_shed_policy,
    run_solve,
    solver_names,
)
from ..solvers import Budget
from .codec import (
    canonical_pid_map,
    problem_fingerprint,
    schedule_from_canonical,
    schedule_to_canonical,
    schedule_to_dict,
)
from .store import SolutionStore, StoreEntry

__all__ = ["RequestRejected", "ServiceTicket", "SolveService"]

_BUDGET_FIELDS = ("wall_time", "max_expanded", "max_weight_evals")


class RequestRejected(RuntimeError):
    """Admission control refused the request.

    ``reason`` is machine-readable (``"queue_full"`` /
    ``"request_budget"`` / ``"global_budget"`` / ``"draining"`` /
    ``"unknown_solver"`` / ``"bad_solver_spec"`` — the last two forwarded
    verbatim from the :mod:`repro.runtime` registry's spec validation);
    ``detail`` explains it for humans.  :meth:`to_dict` is the structured
    error body the HTTP layer returns with status 429/400 (503 with a
    ``Retry-After`` header for ``"draining"``).
    """

    def __init__(self, reason: str, detail: str):
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail

    def to_dict(self) -> dict:
        return {"error": "rejected", "reason": self.reason,
                "detail": self.detail}


class ServiceTicket:
    """Handle for one submitted request.

    ``state`` moves ``queued → running → done|failed`` (cache hits and
    coalesced followers jump straight to their terminal state when the
    answer lands).  ``disposition`` records how the answer was produced:
    ``"solved"``, ``"cache_hit"``, ``"coalesced"`` or ``"shed"`` (the
    saturated-queue degraded path; ``shed`` is then ``True`` and
    ``solved_by`` names the cheap solver that actually ran).

    ``pid_map`` is the submitter problem's canonical pid map
    (:func:`~repro.service.codec.canonical_pid_map`): store entries hold
    schedules in canonical labeling, and each ticket translates them back
    into its *own* submitter's labeling on resolve.  Coalesced followers
    and cache hits may come from a different relabeling of the same
    problem than the one that produced the cached schedule, so the
    translation is per-ticket, not per-solve.
    """

    def __init__(self, ticket_id: str, fingerprint: str, solver: str,
                 priority: int, pid_map: Optional[List[int]] = None,
                 stale_partial: Optional[List[tuple]] = None,
                 base_fingerprint: Optional[str] = None,
                 machine_order: Optional[List[int]] = None):
        self.ticket_id = ticket_id
        self.fingerprint = fingerprint
        self.solver = solver
        self.priority = priority
        self._pid_map = pid_map
        #: Scenario problems: the submitter's canonical machine order
        #: (store entries hold machine-bound schedules in canonical slot
        #: order; resolving maps slots back to the submitter's machines).
        self._machine_order = machine_order
        #: Delta submissions (``POST /delta``): surviving machine groups of
        #: the base schedule in this problem's pids, attached before the
        #: ticket enters the heap so the worker sees them race-free.
        self.stale_partial = stale_partial
        self.base_fingerprint = base_fingerprint
        self.state = "queued"
        self.disposition: Optional[str] = None
        self.objective: Optional[float] = None
        self.schedule = None  # CoSchedule once resolved
        self.solved_by: Optional[str] = None
        self.optimal = False
        self.warm_started = False
        self.shed = False
        self.time_seconds: Optional[float] = None
        self.error: Optional[str] = None
        self._event = threading.Event()

    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved (or ``timeout``); returns :attr:`done`."""
        return self._event.wait(timeout)

    def _localize(self, schedule: Optional[CoSchedule]) -> Optional[CoSchedule]:
        """Canonical-labeled schedule -> this submitter's labeling."""
        if schedule is None or self._pid_map is None:
            return schedule
        inv = [0] * len(self._pid_map)
        for old, new in enumerate(self._pid_map):
            inv[new] = old
        if schedule.capacities is not None and self._machine_order is not None:
            # Machine-bound schedule: slot i of the canonical schedule is
            # the submitter's machine machine_order[i].
            order = self._machine_order
            groups: List[List[int]] = [[] for _ in order]
            caps = [0] * len(order)
            for slot, k in enumerate(order):
                groups[k] = [inv[p] for p in schedule.groups[slot]]
                caps[k] = schedule.capacities[slot]
            return CoSchedule.from_machine_groups(groups, capacities=caps)
        return CoSchedule.from_groups(
            [[inv[p] for p in g] for g in schedule.groups], u=schedule.u
        )

    def _resolve(self, entry: StoreEntry, disposition: str,
                 warm_started: bool = False,
                 time_seconds: Optional[float] = None) -> None:
        self.objective = entry.objective
        self.schedule = self._localize(entry.schedule)
        self.solved_by = entry.solver
        self.optimal = entry.optimal
        self.disposition = disposition
        self.warm_started = warm_started
        self.time_seconds = time_seconds
        self.state = "done"
        self._event.set()

    def _fail(self, message: str) -> None:
        self.error = message
        self.state = "failed"
        self._event.set()

    def to_dict(self) -> dict:
        """The ``GET /status/<id>`` payload."""
        out = {
            "id": self.ticket_id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "solver": self.solver,
            "priority": self.priority,
            "disposition": self.disposition,
        }
        if self.base_fingerprint is not None:
            out["base_fingerprint"] = self.base_fingerprint
            out["base_hit"] = self.stale_partial is not None
        if self.state == "done":
            out.update({
                "objective": self.objective,
                "schedule": schedule_to_dict(self.schedule),
                "solved_by": self.solved_by,
                "optimal": self.optimal,
                "warm_started": self.warm_started,
                "shed": self.shed,
                "time_seconds": self.time_seconds,
            })
        if self.error is not None:
            out["error"] = self.error
        return out


class SolveService:
    """Memoizing, coalescing solve queue over a worker-thread pool.

    Parameters
    ----------
    store:
        Shared :class:`SolutionStore` (a fresh in-memory one by default).
    workers:
        Worker threads.  With one worker the solve order is exactly the
        priority order, which makes coalescing deterministic in tests.
    max_queue:
        Bound on *queued* (not yet running) requests; submissions beyond
        it are rejected with reason ``"queue_full"``.
    default_solver:
        Solver spec used when a request names none (any
        :mod:`repro.runtime` registry spec, e.g. ``"fallback"`` or
        ``"hastar?mer=8"``).
    per_request_budget:
        Optional cap: each admitted request's budget must be limited to at
        most this in every currency the cap sets.
    global_budget:
        Optional cap on the *total* budget the service may commit across
        its lifetime, enforced at admission (a request with an unlimited
        currency cannot be admitted under a global cap on that currency).
    tracer:
        Optional :class:`~repro.perf.Tracer`; the service emits ``svc_*``
        events through it (guarded by an internal lock, so a shared sink
        is safe even with several workers).
    solver_factories:
        Optional override mapping ``name -> factory`` that *replaces* the
        runtime registry for this service instance (tests inject failing
        solvers this way).  When ``None`` (the default), solver specs
        resolve through :func:`repro.runtime.run_solve`.
    shed_policy:
        Optional comma-separated chain of cheap registry solver specs
        (validated by :func:`repro.runtime.resolve_shed_policy` — exact
        solvers are refused).  When set, a submission that would be
        rejected with ``queue_full`` is instead **shed**: the first policy
        solver runs synchronously in the submitting thread, the ticket
        resolves with disposition ``"shed"`` / ``shed=True``, and the
        result still feeds the store's monotone merge.  ``None`` (the
        default) keeps the hard ``queue_full`` rejection.
    shed_budget:
        Optional :class:`Budget` cap applied to every shed solve
        (defaults to a 1-second wall cap so the degraded path stays
        bounded even if a policy member is slower than expected).
    """

    def __init__(
        self,
        store: Optional[SolutionStore] = None,
        workers: int = 2,
        max_queue: int = 64,
        default_solver: str = "fallback",
        per_request_budget: Optional[Budget] = None,
        global_budget: Optional[Budget] = None,
        tracer=None,
        solver_factories: Optional[Dict[str, Callable[[], object]]] = None,
        shed_policy: Optional[str] = None,
        shed_budget: Optional[Budget] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.store = store if store is not None else SolutionStore()
        self.workers = workers
        self.max_queue = max_queue
        self.default_solver = default_solver
        self.per_request_budget = per_request_budget
        self.global_budget = global_budget
        self.tracer = tracer
        self.solver_factories = (
            dict(solver_factories) if solver_factories is not None else None
        )
        try:
            self._check_solver(default_solver)
        except RequestRejected as exc:
            raise ValueError(
                f"unknown default solver {default_solver!r}: {exc.detail}"
            ) from exc
        # Shed policy resolves (and validates) at construction: a bad
        # policy is a configuration error, not a per-request surprise.
        self._shed_policy = (
            resolve_shed_policy(shed_policy) if shed_policy else None
        )
        self.shed_budget = (
            shed_budget if shed_budget is not None else Budget(wall_time=1.0)
        )

        self.counters = PerfCounters()  # merged from every solved problem
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._heap: List[tuple] = []  # (priority, seq, ticket, problem, budget)
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._tickets: Dict[str, ServiceTicket] = {}
        self._inflight: Dict[str, dict] = {}  # fp -> {"ticket", "followers"}
        self._committed = {f: 0.0 for f in _BUDGET_FIELDS}
        self._stats = {
            "submitted": 0, "solves": 0, "cache_hits": 0, "coalesced": 0,
            "rejected": 0, "warm_starts": 0, "errors": 0, "completed": 0,
            "shed": 0, "deltas": 0, "delta_base_hits": 0,
        }
        self._lane_depth: Dict[int, int] = {}
        self._threads: List[threading.Thread] = []
        self._shutdown = False
        self._draining = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "SolveService":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._threads:
                return self
            self._shutdown = False
            self._draining = False
            for i in range(self.workers):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"cosched-worker-{i}", daemon=True)
                self._threads.append(t)
        for t in self._threads:
            t.start()
        return self

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown, phase one: **stop admitting, finish everything
        accepted**.

        This is the one drain contract shared by the single-process
        service, the shard workers (SIGTERM triggers it) and the
        dispatcher (which drains every shard): from the moment ``drain``
        is called, new submissions are rejected with reason
        ``"draining"`` (HTTP 503 + ``Retry-After``), while every ticket
        already admitted — queued, running, and their coalesced
        followers — resolves normally.

        Blocks until the queue and the in-flight table are empty or
        ``timeout`` elapses; returns ``True`` when fully drained.  Call
        :meth:`stop` afterwards to join the workers (on a timed-out
        drain, ``stop`` fails the stragglers rather than hang clients).
        """
        deadline = time.monotonic() + timeout
        with self._work:
            already = self._draining
            self._draining = True
        if not already and self.tracer is not None:
            self._emit("svc_drain", timeout=timeout)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._heap and not self._inflight:
                    return True
            time.sleep(0.01)
        with self._lock:
            return not self._heap and not self._inflight

    def stop(self, timeout: float = 10.0) -> None:
        """Hard stop: workers finish their *current* solve, remaining
        queued tickets (and their coalesced followers) fail with
        ``"service stopped"``.  For a graceful shutdown call
        :meth:`drain` first — after a clean drain there is nothing left
        to fail and ``stop`` only joins the workers."""
        with self._work:
            self._shutdown = True
            victims = []
            for item in self._heap:
                ticket = item[2]
                victims.append(ticket)
                # A queued primary's inflight entry carries its coalesced
                # followers; they must fail too or their wait() hangs.
                # (Running solves keep their entries and resolve normally.)
                inflight = self._inflight.pop(ticket.fingerprint, None)
                if inflight is not None:
                    victims.extend(inflight["followers"])
            self._heap.clear()
            self._lane_depth.clear()
            self._work.notify_all()
        for ticket in victims:
            ticket._fail("service stopped")
        for t in self._threads:
            t.join(timeout)
        self._threads = []

    def __enter__(self) -> "SolveService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # tracing
    # ------------------------------------------------------------------ #

    def _emit(self, ev: str, **fields) -> None:
        if self.tracer is None:
            return
        with self._lock:
            self.tracer.emit(ev, **fields)

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def available_solvers(self) -> tuple:
        """The solver names this service accepts — the runtime registry's
        set unless a ``solver_factories`` override is installed.  Reported
        by ``GET /metrics`` so clients see the same set ``cosched list``
        prints."""
        if self.solver_factories is not None:
            return tuple(sorted(self.solver_factories))
        return solver_names()

    def _check_solver(self, spec: str, problem=None) -> None:
        """Raise :class:`RequestRejected` unless ``spec`` resolves — and,
        when ``problem`` is given, unless the registry entry declares the
        scenario capabilities the problem requires (reason
        ``"unsupported_scenario"``, surfaced as HTTP 400)."""
        if self.solver_factories is not None:
            if spec not in self.solver_factories:
                raise RequestRejected(
                    "unknown_solver",
                    f"{spec!r} is not one of "
                    f"{sorted(self.solver_factories)}",
                )
            return
        try:
            parsed = parse_spec(spec)
        except SpecError as exc:
            raise RequestRejected(exc.reason, exc.detail) from exc
        if problem is not None:
            required = problem.required_capabilities()
            missing = required - get_info(parsed.name).scenario_flags()
            if missing:
                raise RequestRejected(
                    "unsupported_scenario",
                    f"solver {spec!r} does not support scenario feature(s) "
                    f"{sorted(missing)} required by this problem; see "
                    f"docs/SCENARIOS.md for the solver support matrix",
                )

    def _check_admission(self, budget: Optional[Budget]) -> None:
        """Raise :class:`RequestRejected` if the request may not enter.
        Caller holds the lock; commits the budget on success."""
        if len(self._heap) >= self.max_queue:
            raise RequestRejected(
                "queue_full",
                f"queue holds {len(self._heap)}/{self.max_queue} requests",
            )
        req = budget if budget is not None else Budget()
        cap = self.per_request_budget
        if cap is not None:
            for f in _BUDGET_FIELDS:
                limit = getattr(cap, f)
                if limit is None:
                    continue
                asked = getattr(req, f)
                if asked is None or asked > limit:
                    raise RequestRejected(
                        "request_budget",
                        f"budget.{f}={asked} exceeds the per-request cap "
                        f"{limit} (unlimited requests are not admitted "
                        f"under a cap)",
                    )
        glob = self.global_budget
        if glob is not None:
            for f in _BUDGET_FIELDS:
                limit = getattr(glob, f)
                if limit is None:
                    continue
                asked = getattr(req, f)
                if asked is None:
                    raise RequestRejected(
                        "global_budget",
                        f"a global {f} cap is armed; requests must state a "
                        f"finite budget.{f}",
                    )
                if self._committed[f] + asked > limit:
                    raise RequestRejected(
                        "global_budget",
                        f"committing budget.{f}={asked} would exceed the "
                        f"global cap ({self._committed[f]} of {limit} "
                        f"already committed)",
                    )
            for f in _BUDGET_FIELDS:
                if getattr(glob, f) is not None:
                    self._committed[f] += getattr(req, f)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        problem: CoSchedulingProblem,
        solver: Optional[str] = None,
        budget: Optional[Budget] = None,
        priority: int = 1,
        refine: bool = False,
        _stale_partial: Optional[List[tuple]] = None,
        _base_fingerprint: Optional[str] = None,
    ) -> ServiceTicket:
        """Submit a problem; returns a :class:`ServiceTicket`.

        ``refine=True`` skips the cache for non-optimal entries (the entry
        still warm-starts the solver); proven-optimal entries are always
        served from cache.  Raises :class:`RequestRejected` when admission
        control refuses the request.  The underscore parameters are
        :meth:`submit_delta`'s channel for repair state — attached to the
        ticket before it can reach a worker.
        """
        solver_name = solver if solver is not None else self.default_solver
        try:
            self._check_solver(solver_name, problem=problem)
        except RequestRejected as exc:
            with self._lock:
                self._stats["rejected"] += 1
            self._emit("svc_reject", reason=exc.reason, solver=solver_name)
            raise
        fp = problem_fingerprint(problem)
        pid_map = canonical_pid_map(problem)
        machine_order = (list(problem.canonical_machine_order())
                         if problem.is_scenario else None)

        # Cache, coalesce and admission are decided under one lock, so a
        # solve completing between the store lookup and the inflight check
        # cannot slip a redundant re-solve past the memo.  (Trace emits go
        # through self.tracer directly — _emit would re-take the lock.)
        shed_ticket: Optional[ServiceTicket] = None
        with self._work:
            self._stats["submitted"] += 1
            if self._draining:
                # The drain contract: nothing new is admitted (not even
                # cache hits), everything already accepted resolves.
                self._stats["rejected"] += 1
                exc = RequestRejected(
                    "draining",
                    "service is draining; retry against a restarted "
                    "instance (Retry-After applies)",
                )
                if self.tracer is not None:
                    self.tracer.emit("svc_reject", reason=exc.reason,
                                     fingerprint=fp)
                raise exc
            entry = self.store.lookup(fp)
            if entry is not None and (entry.optimal or not refine):
                ticket = ServiceTicket(f"req-{next(self._ids)}", fp,
                                       solver_name, priority, pid_map=pid_map,
                                       stale_partial=_stale_partial,
                                       base_fingerprint=_base_fingerprint,
                                       machine_order=machine_order)
                ticket._resolve(entry, "cache_hit", time_seconds=0.0)
                self._tickets[ticket.ticket_id] = ticket
                self._stats["cache_hits"] += 1
                self._stats["completed"] += 1
                if self.tracer is not None:
                    self.tracer.emit("svc_cache_hit", id=ticket.ticket_id,
                                     fingerprint=fp,
                                     objective=entry.objective,
                                     optimal=entry.optimal)
                return ticket
            inflight = self._inflight.get(fp)
            if inflight is not None:
                ticket = ServiceTicket(f"req-{next(self._ids)}", fp,
                                       solver_name, priority, pid_map=pid_map,
                                       stale_partial=_stale_partial,
                                       base_fingerprint=_base_fingerprint,
                                       machine_order=machine_order)
                ticket.state = "queued"
                inflight["followers"].append(ticket)
                self._tickets[ticket.ticket_id] = ticket
                self._stats["coalesced"] += 1
                if self.tracer is not None:
                    self.tracer.emit("svc_coalesce", id=ticket.ticket_id,
                                     fingerprint=fp,
                                     primary=inflight["ticket"].ticket_id)
                return ticket
            try:
                self._check_admission(budget)
            except RequestRejected as exc:
                if (exc.reason == "queue_full"
                        and self._shed_policy is not None):
                    # Load-shedding: degrade, don't reject.  The solve
                    # itself runs outside the lock (below).
                    shed_ticket = ServiceTicket(
                        f"req-{next(self._ids)}", fp, solver_name,
                        priority, pid_map=pid_map,
                        base_fingerprint=_base_fingerprint,
                        machine_order=machine_order)
                    self._tickets[shed_ticket.ticket_id] = shed_ticket
                    self._stats["shed"] += 1
                else:
                    self._stats["rejected"] += 1
                    if self.tracer is not None:
                        self.tracer.emit("svc_reject", reason=exc.reason,
                                         fingerprint=fp)
                    raise
            if shed_ticket is None:
                ticket = ServiceTicket(f"req-{next(self._ids)}", fp,
                                       solver_name, priority,
                                       pid_map=pid_map,
                                       stale_partial=_stale_partial,
                                       base_fingerprint=_base_fingerprint,
                                       machine_order=machine_order)
                self._tickets[ticket.ticket_id] = ticket
                self._inflight[fp] = {"ticket": ticket, "followers": []}
                heapq.heappush(
                    self._heap,
                    (priority, next(self._seq), ticket, problem, budget),
                )
                self._lane_depth[priority] = (
                    self._lane_depth.get(priority, 0) + 1
                )
                if self.tracer is not None:
                    self.tracer.emit("svc_enqueue", id=ticket.ticket_id,
                                     fingerprint=fp, solver=solver_name,
                                     priority=priority,
                                     depth=len(self._heap))
                self._work.notify()
                return ticket
        # Shed path: run the cheap policy solver synchronously, outside
        # the lock (it is fast, but must not serialize the queue).
        self._run_shed(shed_ticket, problem)
        return shed_ticket

    def submit_delta(
        self,
        base_problem: CoSchedulingProblem,
        problem: CoSchedulingProblem,
        solver: Optional[str] = None,
        budget: Optional[Budget] = None,
        priority: int = 1,
        refine: bool = False,
    ) -> ServiceTicket:
        """Submit ``problem`` as a delta over ``base_problem``
        (``POST /delta``).

        The base schedule is resolved from the store by the *base*
        problem's fingerprint; when present, the surviving machine groups
        (:func:`repro.online.delta.partial_from_base`) ride on the ticket
        and the worker runs the solver through the incremental repair
        path.  On a base miss the request degrades to an ordinary
        :meth:`submit` — correct, just not incremental.  ``solver``
        defaults to ``"repair"`` (i.e. ``repair?base=hastar``); any
        registry spec is accepted, but only ``repair`` specs use the
        attached stale state.
        """
        from ..online.delta import match_delta, partial_from_base

        solver_name = solver if solver is not None else "repair"
        base_fp = problem_fingerprint(base_problem)
        stale_partial = None
        entry = self.store.peek(base_fp)
        if entry is not None and entry.schedule.u == base_problem.u and sum(
            len(g) for g in entry.schedule.groups
        ) == base_problem.n:
            base_schedule = schedule_from_canonical(
                base_problem, entry.schedule)
            delta = match_delta(base_problem, problem)
            stale_partial = partial_from_base(base_schedule, delta)
        with self._lock:
            self._stats["deltas"] += 1
            if stale_partial is not None:
                self._stats["delta_base_hits"] += 1
        self._emit("svc_delta", base_fingerprint=base_fp,
                   base_hit=stale_partial is not None, solver=solver_name)
        return self.submit(
            problem, solver=solver_name, budget=budget, priority=priority,
            refine=refine, _stale_partial=stale_partial,
            _base_fingerprint=base_fp,
        )

    def _run_shed(self, ticket: ServiceTicket,
                  problem: CoSchedulingProblem) -> None:
        """Resolve ``ticket`` via the shed policy; records into the store."""
        fp = ticket.fingerprint
        try:
            report, spec_used = self._shed_policy.solve(
                problem, budget=self.shed_budget)
        except Exception as exc:  # noqa: BLE001 — shedding must not raise
            with self._lock:
                self._stats["errors"] += 1
                self._stats["completed"] += 1
            ticket._fail(f"shed solve failed: {exc}")
            return
        canon_schedule = schedule_to_canonical(problem, report.schedule)
        self.store.record(fp, canon_schedule, report.objective,
                          report.solver, report.optimal)
        entry = StoreEntry(fp, canon_schedule, report.objective,
                           report.solver, report.optimal)
        ticket.shed = True
        ticket._resolve(entry, "shed", time_seconds=report.solve_seconds)
        with self._lock:
            self._stats["completed"] += 1
        self._emit("svc_shed", id=ticket.ticket_id, fingerprint=fp,
                   policy=self._shed_policy.describe(), used=spec_used,
                   objective=report.objective)

    def ticket(self, ticket_id: str) -> Optional[ServiceTicket]:
        """Look up a ticket by id (``None`` if unknown)."""
        with self._lock:
            return self._tickets.get(ticket_id)

    # ------------------------------------------------------------------ #
    # workers
    # ------------------------------------------------------------------ #

    def _worker_loop(self) -> None:
        while True:
            with self._work:
                while not self._heap and not self._shutdown:
                    self._work.wait()
                if self._shutdown and not self._heap:
                    return
                priority, _, ticket, problem, budget = heapq.heappop(self._heap)
                self._lane_depth[priority] -= 1
                if self._lane_depth[priority] == 0:
                    del self._lane_depth[priority]
                ticket.state = "running"
            self._run_one(ticket, problem, budget)

    def _run_one(self, ticket: ServiceTicket, problem: CoSchedulingProblem,
                 budget: Optional[Budget]) -> None:
        fp = ticket.fingerprint
        warm = self.store.peek(fp)
        warm_schedule = None
        if warm is not None and warm.schedule.u == problem.u and sum(
            len(g) for g in warm.schedule.groups
        ) == problem.n:
            # Store entries are canonical-labeled; the incumbent must be
            # translated into *this* problem's labeling before seeding.
            warm_schedule = schedule_from_canonical(problem, warm.schedule)
            with self._lock:
                self._stats["warm_starts"] += 1
            self._emit("svc_warm_start", id=ticket.ticket_id, fingerprint=fp,
                       incumbent=warm.objective, from_solver=warm.solver)
        try:
            if self.solver_factories is not None:
                solver = self.solver_factories[ticket.solver]()
                result = solver.solve(problem, budget=budget,
                                      initial_schedule=warm_schedule)
            elif (ticket.stale_partial is not None
                    and parse_spec(ticket.solver).name == "repair"):
                # Delta path: hand the base schedule's surviving groups to
                # the repair solver (constructed per run — instances are
                # not shared across tickets).
                solver = create_solver(ticket.solver)
                solver.stale_partial = ticket.stale_partial
                result = run_solve(problem, solver, budget=budget,
                                   warm_start=warm_schedule).result
            else:
                result = run_solve(problem, ticket.solver, budget=budget,
                                   warm_start=warm_schedule).result
            if result.schedule is None:
                raise RuntimeError(
                    f"{result.solver} returned no schedule "
                    f"({result.budget_stopped or 'unknown reason'})"
                )
        except Exception as exc:  # noqa: BLE001 — workers must not die
            with self._work:
                inflight = self._inflight.pop(fp, None)
                self._stats["errors"] += 1
                self._stats["completed"] += 1
            followers = inflight["followers"] if inflight else []
            ticket._fail(str(exc))
            for f in followers:
                f._fail(str(exc))
            return
        # The store keeps schedules in canonical pid labeling so one entry
        # serves every relabeling of the problem; tickets translate back.
        canon_schedule = schedule_to_canonical(problem, result.schedule)
        self.store.record(fp, canon_schedule, result.objective,
                          result.solver, result.optimal)
        entry = self.store.peek(fp) or StoreEntry(
            fp, canon_schedule, result.objective, result.solver,
            result.optimal,
        )
        counters = getattr(problem, "counters", None)
        with self._work:
            inflight = self._inflight.pop(fp, None)
            self._stats["solves"] += 1
            self._stats["completed"] += 1
            if counters is not None:
                self.counters.merge(counters)
        followers = inflight["followers"] if inflight else []
        warm_used = warm_schedule is not None
        ticket._resolve(entry, "solved", warm_started=warm_used,
                        time_seconds=result.time_seconds)
        for f in followers:
            with self._lock:
                self._stats["completed"] += 1
            f._resolve(entry, "coalesced", warm_started=warm_used,
                       time_seconds=result.time_seconds)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #

    def metrics(self) -> dict:
        """The ``GET /metrics`` payload: request counters + derived rates,
        store stats, queue depths per lane, merged solver PerfCounters."""
        with self._lock:
            stats = dict(self._stats)
            lanes = {str(k): v for k, v in sorted(self._lane_depth.items())}
            depth = len(self._heap)
            inflight = len(self._inflight)
            draining = self._draining
            committed = {
                f: v for f, v in self._committed.items() if v
            }
            solver_counters = self.counters.snapshot()
        submitted = stats["submitted"] or 1
        rates = {
            "cache_hit_rate": stats["cache_hits"] / submitted,
            "coalesce_rate": stats["coalesced"] / submitted,
        }
        return {
            "requests": stats,
            "rates": rates,
            "queue": {
                "depth": depth,
                "inflight": inflight,
                "lanes": lanes,
                "workers": self.workers,
                "max_queue": self.max_queue,
                "committed_budget": committed,
                "draining": draining,
                "shed_policy": (
                    self._shed_policy.describe()
                    if self._shed_policy is not None else None
                ),
            },
            "solvers": list(self.available_solvers()),
            "store": self.store.stats(),
            "solver_counters": solver_counters,
            # Worker solves run in this process, so the backend selected at
            # import time is the one scoring every queued request.
            "kernel_backend": _kernels.active_backend(),
        }
