"""Stdlib-only HTTP front end for :class:`~repro.service.queue.SolveService`.

Three endpoints, all JSON:

``POST /solve``
    Body: ``{"problem": <problem doc>, "solver": <name>, "budget":
    {"wall_time": s, "max_expanded": n, "max_weight_evals": n},
    "priority": int, "refine": bool, "wait": seconds}``.  Everything but
    ``problem`` (a :func:`repro.service.codec.problem_to_dict` document)
    is optional.  Replies 200 with the ticket status when the request is
    already resolved (cache hit, or ``wait`` long enough), 202 with the
    ticket id otherwise, 400 for malformed documents / unknown solvers,
    429 with the structured :class:`RequestRejected` body when admission
    control refuses, and 503 with a ``Retry-After`` header while the
    service is draining (see :meth:`SolveService.drain
    <repro.service.queue.SolveService.drain>`).

``POST /delta``
    Like ``/solve`` but incremental: the body carries both
    ``base_problem`` (the previously solved instance) and ``problem``
    (the perturbed roster).  The service resolves the base schedule from
    its :class:`~repro.service.store.SolutionStore` by fingerprint and
    routes the solve through the registry's ``repair`` solver (see
    :meth:`SolveService.submit_delta
    <repro.service.queue.SolveService.submit_delta>` and
    ``docs/ONLINE.md``).  Same reply shapes and error mapping as
    ``/solve``; the ticket document additionally reports
    ``base_fingerprint`` and ``base_hit``.

``GET /status/<id>``
    The ticket's :meth:`~repro.service.queue.ServiceTicket.to_dict`
    (404 for unknown ids).

``GET /metrics``
    :meth:`SolveService.metrics` — request counters and hit/coalesce
    rates, queue depths per priority lane, store stats, and the merged
    solver :class:`~repro.perf.PerfCounters` snapshot.

Built on :class:`http.server.ThreadingHTTPServer` — no dependencies
beyond the standard library.  :func:`start_http_server` binds (port 0
picks an ephemeral port), serves on a daemon thread, and returns the
server; call ``shutdown()`` when done.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..solvers import Budget
from .codec import CodecError, problem_from_dict
from .queue import RequestRejected, SolveService

__all__ = ["CoschedHTTPServer", "start_http_server"]


def _budget_from_dict(d: Optional[dict]) -> Optional[Budget]:
    if not d:
        return None
    unknown = set(d) - {"wall_time", "max_expanded", "max_weight_evals"}
    if unknown:
        raise ValueError(f"unknown budget field(s): {sorted(unknown)}")
    return Budget(
        wall_time=None if d.get("wall_time") is None else float(d["wall_time"]),
        max_expanded=(None if d.get("max_expanded") is None
                      else int(d["max_expanded"])),
        max_weight_evals=(None if d.get("max_weight_evals") is None
                          else int(d["max_weight_evals"])),
    )


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`SolveService`."""

    server: "CoschedHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #

    def _drain_body(self) -> None:
        """Consume the request body before replying on a non-handled POST.

        With HTTP/1.1 keep-alive, unread body bytes would be parsed as the
        next request on the same connection, desyncing the client.
        """
        remaining = int(self.headers.get("Content-Length") or 0)
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                break
            remaining -= len(chunk)

    def _reply(self, status: int, payload: dict,
               retry_after: Optional[int] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args) -> None:  # pragma: no cover
        if self.server.verbose:
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        service = self.server.service
        if self.path == "/metrics":
            self._reply(200, service.metrics())
            return
        if self.path.startswith("/status/"):
            ticket_id = self.path[len("/status/"):]
            ticket = service.ticket(ticket_id)
            if ticket is None:
                self._reply(404, {"error": "not_found",
                                  "detail": f"no ticket {ticket_id!r}"})
                return
            self._reply(200, ticket.to_dict())
            return
        self._reply(404, {"error": "not_found",
                          "detail": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if self.path not in ("/solve", "/delta"):
            self._drain_body()
            self._reply(404, {"error": "not_found",
                              "detail": f"no route {self.path!r}"})
            return
        service = self.server.service
        try:
            length = int(self.headers.get("Content-Length", 0))
            doc = json.loads(self.rfile.read(length) or b"{}")
            problem = problem_from_dict(doc["problem"])
            base_problem = None
            if self.path == "/delta":
                base_problem = problem_from_dict(doc["base_problem"])
            budget = _budget_from_dict(doc.get("budget"))
            wait = float(doc.get("wait", 0.0))
            priority = int(doc.get("priority", 1))
            refine = bool(doc.get("refine", False))
            solver = doc.get("solver")
        except (KeyError, TypeError, ValueError, CodecError) as exc:
            self._reply(400, {"error": "bad_request", "detail": str(exc)})
            return
        try:
            if base_problem is not None:
                ticket = service.submit_delta(
                    base_problem, problem, solver=solver, budget=budget,
                    priority=priority, refine=refine)
            else:
                ticket = service.submit(problem, solver=solver, budget=budget,
                                        priority=priority, refine=refine)
        except RequestRejected as exc:
            if exc.reason == "draining":
                # Graceful drain: tell clients when to come back rather
                # than making them distinguish this from admission limits.
                self._reply(503, exc.to_dict(),
                            retry_after=self.server.retry_after)
                return
            bad_spec = ("unknown_solver", "bad_spec", "bad_param",
                        "unsupported_scenario")
            status = 400 if exc.reason in bad_spec else 429
            self._reply(status, exc.to_dict())
            return
        if wait > 0:
            ticket.wait(wait)
        self._reply(200 if ticket.done else 202, ticket.to_dict())


class CoschedHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`SolveService`.

    ``retry_after`` is the ``Retry-After`` value (seconds) sent with 503
    responses while the service drains — how long a well-behaved client
    should wait before retrying against the restarted instance.
    """

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SolveService,
                 verbose: bool = False, retry_after: int = 2):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.retry_after = retry_after

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def start_http_server(
    service: SolveService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> CoschedHTTPServer:
    """Start serving ``service`` on a daemon thread; returns the server.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address`` or ``server.url``).  The service's worker
    pool is started if it is not already running.  Stop with
    ``server.shutdown()`` followed by ``service.stop()``.
    """
    service.start()
    server = CoschedHTTPServer((host, port), service, verbose=verbose)
    thread = threading.Thread(target=server.serve_forever,
                              name="cosched-http", daemon=True)
    thread.start()
    return server
