"""Serving layer: memoized, coalesced, warm-started co-scheduling solves.

The paper frames its offline optimum as a *performance target for online
co-scheduling systems*; this package is the long-lived scheduler that
target implies — a service that answers a stream of placement requests
instead of one in-process, catalog-built problem at a time.  Four layers,
each usable on its own:

* :mod:`repro.service.codec` — canonical, versioned JSON round-trip for
  :class:`~repro.core.problem.CoSchedulingProblem` and
  :class:`~repro.core.schedule.CoSchedule`, plus a content-addressed
  SHA-256 :func:`~repro.service.codec.problem_fingerprint` that is
  invariant to process/job relabeling (semantically identical requests
  hash identically);
* :mod:`repro.service.store` — :class:`SolutionStore`, a fingerprint-keyed
  best-known-schedule memo (in-memory LRU) over a pluggable
  :mod:`repro.service.backends` :class:`StoreBackend` (memory, or a
  crash-tolerant append-log + snapshot file) whose entries either answer
  a request outright or *warm-start* the next solver run;
* :mod:`repro.service.queue` — :class:`SolveService`, a threaded worker
  pool with admission control (per-request / global budget caps, bounded
  queue), priority lanes, request coalescing (concurrent requests with
  one fingerprint share one solve), graceful ``drain()`` and optional
  load-shedding to a cheap heuristic when the queue saturates;
* :mod:`repro.service.server` — a stdlib-only ``http.server`` JSON API
  (``POST /solve``, ``GET /status/<id>``, ``GET /metrics``) over a
  :class:`SolveService`, with :mod:`repro.service.client` as the matching
  ``urllib`` client;
* :mod:`repro.service.shard` / :mod:`repro.service.dispatcher` — the
  multi-process tier: ``N`` shard worker processes (each a full service
  stack) behind a :class:`ShardedService` frontend that routes by
  ``fingerprint % N``, sheds around dead or saturated shards, respawns
  crashed workers from the shared append log, and drains the whole tier
  on SIGTERM.  :func:`start_dispatcher_server` serves the same wire API
  plus ``GET /health``.

CLI: ``cosched serve`` runs the single-process server, ``cosched serve
--shards N`` the sharded tier, ``cosched submit`` talks to either, and
``cosched solve --problem-file/--save-problem`` round-trips problems
through the codec.  See ``docs/SERVICE.md`` and ``docs/DEPLOYMENT.md``.
"""

from .codec import (
    CodecError,
    canonical_pid_map,
    canonical_problem,
    load_problem,
    problem_fingerprint,
    problem_from_dict,
    problem_to_dict,
    save_problem,
    schedule_from_canonical,
    schedule_from_dict,
    schedule_to_canonical,
    schedule_to_dict,
)
from .backends import AppendLogBackend, MemoryBackend, StoreBackend
from .store import SolutionStore, StoreEntry
from .queue import RequestRejected, ServiceTicket, SolveService
from .server import CoschedHTTPServer, start_http_server
from .client import ServiceClient, ServiceError
from .shard import ShardConfig, ShardHandle, shard_for
from .dispatcher import (
    DispatcherHTTPServer,
    ShardedService,
    start_dispatcher_server,
)

__all__ = [
    "CodecError",
    "canonical_pid_map",
    "canonical_problem",
    "load_problem",
    "problem_fingerprint",
    "problem_from_dict",
    "problem_to_dict",
    "save_problem",
    "schedule_from_canonical",
    "schedule_from_dict",
    "schedule_to_canonical",
    "schedule_to_dict",
    "StoreBackend",
    "MemoryBackend",
    "AppendLogBackend",
    "SolutionStore",
    "StoreEntry",
    "RequestRejected",
    "ServiceTicket",
    "SolveService",
    "CoschedHTTPServer",
    "start_http_server",
    "ServiceClient",
    "ServiceError",
    "shard_for",
    "ShardConfig",
    "ShardHandle",
    "ShardedService",
    "DispatcherHTTPServer",
    "start_dispatcher_server",
]
