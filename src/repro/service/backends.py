"""Persistence backends for the solution store.

:class:`~repro.service.store.SolutionStore` keeps the in-memory LRU and
the monotone merge; *where accepted updates go and how they come back* is
a :class:`StoreBackend`.  Three implementations:

* :class:`MemoryBackend` — nothing persists (the default);
* :class:`AppendLogBackend` — the production backend: a JSONL **append
  log** plus an optional **snapshot** file.  Every accepted update is one
  ``O_APPEND`` line write (atomic per line on POSIX, so *several shard
  processes can share one log file*); :meth:`~AppendLogBackend.replay`
  reads the snapshot first, then the log, tolerating a truncated final
  line (the signature of a crash mid-append); :meth:`~AppendLogBackend.compact`
  monotone-merges the caller's entries with everything durably in the log,
  writes the merge to a fresh snapshot (temp file, fsync, atomic rename),
  and truncates the log *only if no new bytes landed since it was read* —
  a concurrent appender (another shard mid-solve) just leaves the log in
  place, where the next replay or compaction folds it in.  Compaction is
  therefore safe to run against live appenders; the drain/restart runbook
  in ``docs/DEPLOYMENT.md`` stays the recommended time to do it because a
  quiescent log is the only one that actually shrinks;
* the legacy single-file JSONL mode of ``SolutionStore(path=...)`` is now
  an ``AppendLogBackend`` whose log *is* that path (snapshot at
  ``<path>.snap``), so existing stores replay unchanged.

Because the sharded tier routes each fingerprint to exactly one shard
(``shard = fingerprint % N``), shards sharing a log never race on the
same key: each shard replays the whole log at startup but only ever
appends entries for its own fingerprints.  The monotone merge in the
store makes replay idempotent and order-insensitive across shards.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .store import StoreEntry

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = ["StoreBackend", "MemoryBackend", "AppendLogBackend"]


class StoreBackend:
    """Interface between :class:`SolutionStore` and durable storage.

    ``replay()`` yields the entries to seed the store with (best-effort:
    corrupt tails are skipped, not fatal); ``append(entry)`` records one
    accepted update; ``compact(entries)`` rewrites durable state to
    exactly ``entries`` (the store's current contents); ``close()``
    releases file handles.  Implementations must be safe to call from
    several threads of one process; cross-process safety is documented
    per backend.
    """

    #: Human-readable backend kind, reported by ``SolutionStore.stats()``.
    kind = "abstract"

    def replay(self) -> Iterator[StoreEntry]:
        raise NotImplementedError

    def append(self, entry: StoreEntry) -> None:
        raise NotImplementedError

    def compact(self, entries: Iterable[StoreEntry]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def describe(self) -> str:
        return self.kind


class MemoryBackend(StoreBackend):
    """No persistence: replay is empty, appends are dropped."""

    kind = "memory"

    def replay(self) -> Iterator[StoreEntry]:
        return iter(())

    def append(self, entry: StoreEntry) -> None:
        pass

    def compact(self, entries: Iterable[StoreEntry]) -> None:
        pass


def _merge_entry(best: Dict[str, StoreEntry], entry: StoreEntry) -> None:
    """The store's monotone merge (see ``SolutionStore.record``), applied
    to a plain dict during compaction."""
    old = best.get(entry.fingerprint)
    if old is not None:
        improves = entry.objective < old.objective
        upgrades = (entry.optimal and not old.optimal
                    and entry.objective <= old.objective)
        if not (improves or upgrades):
            return
    best[entry.fingerprint] = entry


def _iter_jsonl_entries(path: str, strict_tail: bool) -> Iterator[StoreEntry]:
    """Yield entries from a JSONL file, tolerating a truncated last line.

    A malformed line that is *not* the last one means real corruption and
    raises ``ValueError`` (operators should restore from snapshot — see
    the failure-modes table in ``docs/DEPLOYMENT.md``); a malformed final
    line is the expected residue of a crash mid-append and is skipped.
    """
    if not os.path.exists(path):
        return
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    for i, line in enumerate(lines):
        text = line.strip()
        if not text:
            continue
        try:
            doc = json.loads(text)
            entry = StoreEntry.from_dict(doc)
        except (ValueError, KeyError, TypeError) as exc:
            if i == len(lines) - 1 and not strict_tail:
                return  # crash-truncated tail: recover everything before it
            raise ValueError(
                f"{path}:{i + 1}: corrupt store record: {text[:80]!r}"
            ) from exc
        yield entry


class AppendLogBackend(StoreBackend):
    """Append-log + snapshot persistence, shareable across processes.

    Parameters
    ----------
    path:
        The append-log file.  Created on first append; every accepted
        update is one JSONL line written through an ``O_APPEND`` file
        descriptor, so concurrent appends from multiple shard processes
        interleave whole lines.
    snapshot_path:
        Where :meth:`compact` writes the folded state (default
        ``<path>.snap``).  Replay order is snapshot first, then log.
    """

    kind = "append-log"

    def __init__(self, path: str, snapshot_path: Optional[str] = None):
        self.path = path
        self.snapshot_path = (
            snapshot_path if snapshot_path is not None else path + ".snap"
        )
        self._fd: Optional[int] = None
        self._lock = threading.Lock()

    def describe(self) -> str:
        return f"{self.kind}:{self.path}"

    # ------------------------------------------------------------------ #

    def replay(self) -> Iterator[StoreEntry]:
        # Snapshot lines were written by compact() in one shot, so any
        # malformed line there is real corruption; the log may carry a
        # crash-truncated tail.
        yield from _iter_jsonl_entries(self.snapshot_path, strict_tail=True)
        yield from _iter_jsonl_entries(self.path, strict_tail=False)

    def _ensure_fd(self) -> int:
        """The O_APPEND descriptor, opened lazily (call under the lock)."""
        if self._fd is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        return self._fd

    def append(self, entry: StoreEntry) -> None:
        line = json.dumps(entry.to_dict(), separators=(",", ":")) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            fd = self._ensure_fd()
            # Shared flock: appends proceed concurrently with each other
            # (O_APPEND keeps lines whole) but exclude a compactor's
            # check-and-truncate window in another process.
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_SH)
            try:
                os.write(fd, data)
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)

    def _read_complete_log(self) -> Tuple[int, List[StoreEntry]]:
        """The log's durably complete prefix: ``(byte length, entries)``.

        Bytes after the last newline are a crash's torn tail and are
        excluded (and preserved on disk, matching what :meth:`replay`
        tolerates).  A malformed line *before* the last complete one is
        real corruption and raises, same policy as replay.
        """
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except OSError:
            return 0, []
        cut = data.rfind(b"\n") + 1  # 0 when no complete line yet
        lines = data[:cut].split(b"\n")[:-1] if cut else []
        entries: List[StoreEntry] = []
        for i, raw in enumerate(lines):
            text = raw.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                entries.append(StoreEntry.from_dict(json.loads(text)))
            except (ValueError, KeyError, TypeError) as exc:
                if i == len(lines) - 1:
                    continue  # a cut line that still got its newline
                raise ValueError(
                    f"{self.path}:{i + 1}: corrupt store record: "
                    f"{text[:80]!r}"
                ) from exc
        return cut, entries

    def compact(self, entries: Iterable[StoreEntry]) -> None:
        """Fold durable state into the snapshot; truncate the log if safe.

        The new snapshot is the **monotone merge** of ``entries`` (the
        calling store's view), the previous snapshot, and every complete
        line already in the log — so entries appended by *other*
        processes sharing the log, or folded by an earlier compaction the
        caller never replayed, survive.  The snapshot is written to a
        temp file, fsynced and atomically renamed, so a crash
        mid-compaction leaves the previous snapshot + log intact.  The log
        is then truncated only when its size still equals the merged
        prefix (checked under an exclusive ``flock``): if a concurrent
        append landed in the window, the log is left untouched — its
        pre-merge prefix duplicates the snapshot, which replay's monotone
        merge makes harmless.
        """
        best: Dict[str, StoreEntry] = {}
        for entry in entries:
            _merge_entry(best, entry)
        for entry in _iter_jsonl_entries(self.snapshot_path,
                                         strict_tail=True):
            _merge_entry(best, entry)
        cut, logged = self._read_complete_log()
        for entry in logged:
            _merge_entry(best, entry)
        tmp = self.snapshot_path + ".tmp"
        parent = os.path.dirname(os.path.abspath(self.snapshot_path))
        os.makedirs(parent, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            for fingerprint in sorted(best):
                fh.write(json.dumps(best[fingerprint].to_dict(),
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.snapshot_path)
        with self._lock:
            fd = self._ensure_fd()
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                if os.fstat(fd).st_size == cut:
                    os.ftruncate(fd, 0)
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    # ------------------------------------------------------------------ #

    def sizes(self) -> dict:
        """Log/snapshot byte sizes (0 when absent) — operator telemetry."""
        def _size(p: str) -> int:
            try:
                return os.path.getsize(p)
            except OSError:
                return 0
        return {"log_bytes": _size(self.path),
                "snapshot_bytes": _size(self.snapshot_path)}


def entries_in_file(path: str) -> List[StoreEntry]:
    """Eagerly read one JSONL store file (tests, tooling)."""
    return list(_iter_jsonl_entries(path, strict_tail=False))
