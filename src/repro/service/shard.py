"""Shard worker processes: one solve service per slice of fingerprint space.

The sharded tier (``docs/DEPLOYMENT.md``) is a frontend
:class:`~repro.service.dispatcher.ShardedService` in front of ``N`` shard
**processes**.  Each shard is a full, unmodified service stack —
:class:`~repro.service.queue.SolveService` + the stdlib HTTP server — in
its own interpreter, so solver work scales across cores instead of
contending on one GIL.  Routing is by canonical content fingerprint:

    ``shard = int(fingerprint, 16) % num_shards``

(:func:`shard_for`).  Because the fingerprint is relabeling-invariant
(PR 4) and solver specs are validated once at the dispatcher against the
same registry the shards use (PR 5), a request crosses the process
boundary without re-canonicalization or re-validation — and because a
fingerprint maps to exactly one shard, all coalescing and caching for a
problem stays inside that shard.

Lifecycle: :class:`ShardHandle` spawns the child (``_shard_main``), which
binds an ephemeral port, reports it back over a pipe, then waits.
``SIGTERM`` triggers the shared drain contract — the shard's service
stops admitting (503 + ``Retry-After``), finishes every in-flight and
queued solve, then exits cleanly.  ``SIGKILL`` (``ShardHandle.kill``) is
the crash case the dispatcher's shed/respawn path covers.

The default start method is ``fork`` where available (fast, shares the
imported NumPy); set ``COSCHED_MP_START=spawn`` to force the portable
method (see ``docs/DEPLOYMENT.md``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
from dataclasses import dataclass
from typing import Optional

from .client import ServiceClient

__all__ = ["ShardConfig", "ShardHandle", "shard_for", "mp_context"]


def shard_for(fingerprint: str, num_shards: int) -> int:
    """Deterministic shard index for a problem fingerprint.

    ``fingerprint`` is the hex SHA-256 from
    :func:`repro.service.codec.problem_fingerprint`; the mapping is a
    plain modulus over its integer value, so it is stable across
    processes, restarts and hosts — the same problem always lands on the
    same shard, which is what keeps per-shard stores and coalescing
    correct without any cross-shard coordination.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return int(fingerprint, 16) % num_shards


def mp_context():
    """The multiprocessing context shards spawn under.

    ``COSCHED_MP_START`` overrides (``fork`` / ``spawn`` /
    ``forkserver``); the default prefers ``fork`` for startup speed.
    """
    method = os.environ.get("COSCHED_MP_START")
    if not method:
        method = ("fork" if "fork" in mp.get_all_start_methods()
                  else "spawn")
    return mp.get_context(method)


@dataclass(frozen=True)
class ShardConfig:
    """Everything a shard worker needs to build its service stack.

    Picklable (it crosses the process boundary under ``spawn``).
    ``store_path`` is the *shared* append log — every shard replays the
    whole log at startup and appends entries for its own fingerprints
    (line-atomic ``O_APPEND`` writes; see
    :class:`~repro.service.backends.AppendLogBackend`).
    """

    index: int
    num_shards: int
    host: str = "127.0.0.1"
    workers: int = 1
    max_queue: int = 64
    default_solver: str = "fallback"
    store_path: Optional[str] = None
    store_capacity: int = 1024
    shed_policy: Optional[str] = "pg"
    drain_timeout: float = 30.0
    #: Seconds the shard keeps serving /status after its drain completes,
    #: so clients that submitted just before SIGTERM can read results.
    exit_grace: float = 0.25
    verbose: bool = False


def _shard_main(config: ShardConfig, conn) -> None:
    """Child-process entry point: serve until SIGTERM, then drain."""
    from .queue import SolveService
    from .server import start_http_server
    from .store import SolutionStore

    stop = threading.Event()
    # SIGTERM is the drain signal; SIGINT belongs to the parent (a Ctrl-C
    # in the terminal reaches the whole group — the dispatcher decides).
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    store = SolutionStore(capacity=config.store_capacity,
                          path=config.store_path)
    service = SolveService(
        store=store,
        workers=config.workers,
        max_queue=config.max_queue,
        default_solver=config.default_solver,
        shed_policy=config.shed_policy,
    )
    server = start_http_server(service, host=config.host, port=0,
                               verbose=config.verbose)
    try:
        conn.send({"port": server.server_address[1], "pid": os.getpid()})
    finally:
        conn.close()

    stop.wait()
    # The drain contract (queue.SolveService.drain): reject new work with
    # 503 while finishing everything admitted, so no client hangs.
    service.drain(timeout=config.drain_timeout)
    if config.exit_grace > 0:
        threading.Event().wait(config.exit_grace)
    server.shutdown()
    service.stop()
    store.close()


class ShardHandle:
    """Parent-side handle for one shard worker process.

    Spawns on construction and blocks until the child reports its port
    (``spawn_timeout``).  ``client`` is a ready
    :class:`~repro.service.client.ServiceClient` for the shard's HTTP
    endpoint.
    """

    def __init__(self, config: ShardConfig, spawn_timeout: float = 60.0,
                 request_timeout: float = 60.0):
        self.config = config
        ctx = mp_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_shard_main, args=(config, child_conn),
            name=f"cosched-shard-{config.index}", daemon=True,
        )
        self.process.start()
        child_conn.close()
        if not parent_conn.poll(spawn_timeout):
            self.process.kill()
            raise RuntimeError(
                f"shard {config.index} did not report a port within "
                f"{spawn_timeout}s"
            )
        info = parent_conn.recv()
        parent_conn.close()
        self.port: int = info["port"]
        self.pid: int = info["pid"]
        self.url = f"http://{config.host}:{self.port}"
        self.client = ServiceClient(self.url, timeout=request_timeout)

    # ------------------------------------------------------------------ #

    @property
    def index(self) -> int:
        return self.config.index

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def drain(self, timeout: float = 35.0) -> bool:
        """SIGTERM the shard and wait for its graceful exit.

        Returns ``True`` when the child exited within ``timeout``;
        otherwise escalates to :meth:`kill` and returns ``False``.
        """
        if self.process.is_alive():
            self.process.terminate()  # SIGTERM -> child drains
            self.process.join(timeout)
        if self.process.is_alive():
            self.kill()
            return False
        return True

    def kill(self, timeout: float = 5.0) -> None:
        """SIGKILL — the crash path (used by tests and hard stops)."""
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)
