"""``urllib``-based client for the co-scheduling HTTP service.

The wire format is plain JSON (see ``docs/SERVICE.md``); this client only
adds the encode/decode plumbing and a poll loop::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8831")
    status = client.solve(problem, solver="hill",
                          budget={"wall_time": 2.0})
    print(status["objective"], status["disposition"])

Errors come back as :class:`ServiceError` with the server's structured
body attached (``err.payload["reason"]`` for admission rejections).
Standard library only.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

from ..core.problem import CoSchedulingProblem
from .codec import problem_to_dict

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response; ``payload`` is the server's JSON error body."""

    def __init__(self, status: int, payload: dict):
        detail = payload.get("detail") or payload.get("error") or "?"
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Minimal blocking client for one service endpoint.

    Parameters
    ----------
    base_url:
        e.g. ``"http://127.0.0.1:8831"`` (no trailing slash needed).
    timeout:
        Socket timeout per HTTP call, seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers,
                                     method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {"error": "http_error", "detail": str(exc)}
            raise ServiceError(exc.code, body) from exc

    # ------------------------------------------------------------------ #

    def submit(
        self,
        problem: CoSchedulingProblem,
        solver: Optional[str] = None,
        budget: Optional[dict] = None,
        priority: int = 1,
        refine: bool = False,
        wait: float = 0.0,
    ) -> dict:
        """``POST /solve``; returns the ticket status document."""
        payload: dict = {
            "problem": problem_to_dict(problem),
            "priority": priority,
            "refine": refine,
            "wait": wait,
        }
        if solver is not None:
            payload["solver"] = solver
        if budget is not None:
            payload["budget"] = budget
        return self._request("POST", "/solve", payload)

    def delta(
        self,
        base_problem: CoSchedulingProblem,
        problem: CoSchedulingProblem,
        solver: Optional[str] = None,
        budget: Optional[dict] = None,
        priority: int = 1,
        refine: bool = False,
        wait: float = 0.0,
    ) -> dict:
        """``POST /delta`` — incremental re-solve of ``problem`` against
        the stored schedule of ``base_problem``; returns the ticket
        status document (with ``base_fingerprint`` / ``base_hit``)."""
        payload: dict = {
            "base_problem": problem_to_dict(base_problem),
            "problem": problem_to_dict(problem),
            "priority": priority,
            "refine": refine,
            "wait": wait,
        }
        if solver is not None:
            payload["solver"] = solver
        if budget is not None:
            payload["budget"] = budget
        return self._request("POST", "/delta", payload)

    def status(self, ticket_id: str) -> dict:
        """``GET /status/<id>``."""
        return self._request("GET", f"/status/{ticket_id}")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")

    def solve(
        self,
        problem: CoSchedulingProblem,
        solver: Optional[str] = None,
        budget: Optional[dict] = None,
        priority: int = 1,
        refine: bool = False,
        poll: float = 0.05,
        timeout: float = 60.0,
    ) -> dict:
        """Submit and block until the ticket resolves (or ``timeout``).

        Returns the final status document; raises :class:`ServiceError`
        on rejection and ``TimeoutError`` if the deadline passes first.
        """
        status = self.submit(problem, solver=solver, budget=budget,
                             priority=priority, refine=refine, wait=poll)
        deadline = time.monotonic() + timeout
        while status["state"] not in ("done", "failed"):
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"ticket {status['id']} still {status['state']!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll)
            status = self.status(status["id"])
        return status
