"""Command-line interface.

    cosched list                      # available experiments
    cosched run table1 [table3 ...]   # run experiments, print their tables
    cosched run all
    cosched solve --cluster quad BT CG EP FT IS LU MG SP
    cosched solve --solver hastar --cluster eight <apps...>
    cosched solve --budget 5 --trace solve.jsonl <apps...>   # anytime + trace
    cosched solve --save-problem mix.json BT CG EP FT  # export the instance
    cosched solve --problem-file mix.json              # re-solve it anywhere
    cosched graph --cluster dual BT CG EP FT IS LU     # Fig. 3-style view
    cosched simulate --jobs 60 --machines 4            # online policies
    cosched serve --port 8831 --workers 2              # memoizing HTTP service
    cosched serve --shards 4 --store memo.jsonl        # multi-process tier
    cosched submit --url http://127.0.0.1:8831 BT CG EP FT
    cosched bench --out benchmarks/results/BENCH_abc123.json  # perf document
    cosched bench --trajectory             # cross-revision perf table
    cosched replay --n 32 --churn 0.5      # incremental repair vs re-solve

``solve`` co-schedules named catalog programs and prints the schedule plus
its degradation breakdown; ``--solver`` takes a runtime registry spec
string (``hastar?mer=4``, ``fallback?chain=oastar,pg`` — see
``docs/RUNTIME.md``), ``--budget SECONDS`` makes it anytime (best valid
schedule at the deadline, ``--solver fallback`` cascades OA* > HA* > PG),
``--trace FILE`` streams JSONL search events, ``--json`` prints the
normalized :class:`~repro.runtime.SolveReport` document instead of the
pretty schedule, and ``--profile`` prints the perf-counter report even
when the solve fails.  ``--save-problem``/``--problem-file`` round-trip
the instance through the :mod:`repro.service` codec, so a solve is
reproducible outside the catalog.  ``graph`` renders the co-scheduling
graph with the chosen solver's path highlighted; ``simulate`` races online
placement policies on a random arrival trace.  ``serve`` runs the
memoizing solve service (``docs/SERVICE.md``) — single-process by
default, or ``--shards N`` for the multi-process sharded tier
(``docs/DEPLOYMENT.md``) with graceful SIGTERM drain and load-shedding
via ``--shed-solver``; ``submit`` sends one problem to a running service
and prints the resolved schedule.  ``replay`` drives an arrival trace
through the incremental repair engine (``docs/ONLINE.md``) and compares
amortized repair latency against per-event full re-solves; ``bench
--trajectory`` aggregates every committed ``BENCH_*.json`` into a
cross-revision table.

Every subcommand resolves solvers through :mod:`repro.runtime` — the CLI,
the HTTP service and the experiment runners all accept the same solver
set and the same spec syntax.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .experiments import REGISTRY
from .runtime import SpecError, get_info, parse_spec, run_solve, solver_names
from .solvers import Budget
from .workloads.catalog import CATALOG
from .workloads.mixes import serial_mix


def _parse_solver_spec(spec: str):
    """Validate a ``--solver`` value; prints the error and returns ``None``
    on rejection (callers exit 2)."""
    try:
        return parse_spec(spec)
    except SpecError as exc:
        print(f"bad --solver {spec!r} ({exc.reason}): {exc.detail}",
              file=sys.stderr)
        return None


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in REGISTRY:
        print(f"  {name}")
    print("\nsolvers:")
    for name in solver_names():
        info = get_info(name)
        caps = []
        caps.append("exact" if info.exact else "heuristic")
        if info.supports_budget:
            caps.append("budget")
        if info.supports_warm_start:
            caps.append("warm-start")
        if info.supports_workers:
            caps.append("workers")
        if info.scenario_flags():
            caps.append("scenarios")
        alias = f" (aliases: {', '.join(info.aliases)})" if info.aliases else ""
        print(f"  {name:10s} [{', '.join(caps)}] {info.summary}{alias}")
    print("\ncatalog programs:", ", ".join(sorted(CATALOG)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = args.experiments
    if names == ["all"]:
        names = list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    for name in names:
        result = REGISTRY[name]()
        print(f"\n== {result.exp_id}: {result.title} ==")
        print(result.text)
    return 0


def _load_or_mix_problem(args: argparse.Namespace):
    """Build the instance from ``--problem-file`` or catalog apps.

    Returns ``(problem, None)`` on success, ``(None, exit_code)`` after
    printing the error.  Shared by ``solve`` and ``submit``.
    """
    if getattr(args, "problem_file", None):
        if args.apps:
            print("give PROGRAMs or --problem-file, not both",
                  file=sys.stderr)
            return None, 2
        from .service import CodecError, load_problem

        try:
            return load_problem(args.problem_file), None
        except (OSError, ValueError, CodecError) as exc:
            print(f"cannot load {args.problem_file}: {exc}", file=sys.stderr)
            return None, 2
    if not args.apps:
        print("name catalog PROGRAMs or pass --problem-file", file=sys.stderr)
        return None, 2
    unknown = [a for a in args.apps if a not in CATALOG]
    if unknown:
        print(f"unknown program(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(CATALOG))}", file=sys.stderr)
        return None, 2
    return serial_mix(args.apps, cluster=args.cluster), None


def _cmd_solve(args: argparse.Namespace) -> int:
    spec = _parse_solver_spec(args.solver)
    if spec is None:
        return 2
    problem, err = _load_or_mix_problem(args)
    if problem is None:
        return err
    if args.save_problem:
        from .service import save_problem

        fingerprint = save_problem(problem, args.save_problem)
        print(f"problem -> {args.save_problem} "
              f"(fingerprint {fingerprint[:16]}...)", file=sys.stderr)
    budget = None
    if args.budget is not None:
        if args.budget <= 0:
            print("--budget must be positive seconds", file=sys.stderr)
            return 2
        budget = Budget(wall_time=args.budget)
    tracer = None
    if args.trace:
        from .perf import Tracer

        tracer = Tracer(args.trace)
    report = None
    try:
        # run_solve attaches (and restores) the tracer, applies --workers,
        # and arms the budget — the CLI only renders the report.
        try:
            report = run_solve(problem, spec, budget=budget, tracer=tracer,
                               workers=getattr(args, "workers", 1))
        except SpecError as exc:
            # e.g. unsupported_scenario: the problem needs capabilities
            # (heterogeneous roster, constraints) this solver lacks.
            print(f"cannot solve with {spec.canonical()!r} "
                  f"({exc.reason}): {exc.detail}", file=sys.stderr)
            return 2
        result = report.result
        if result.schedule is None:
            reason = report.stopped or "no schedule found"
            print(f"no schedule ({reason})", file=sys.stderr)
            return 1
        if args.json:
            import json

            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
            return 0
        print(result.schedule.pretty(problem.workload))
        print(f"\nsolver: {result.solver}   time: {result.time_seconds:.4f}s")
        if report.stopped is not None:
            print(f"budget: stopped on {report.stopped} "
                  f"(best-so-far schedule, not proven optimal)")
        print(f"total degradation: {result.objective:.6f}")
        print(
            "average degradation: "
            f"{result.evaluation.average_job_degradation:.6f}"
        )
        for jid, d in sorted(result.evaluation.job_degradations.items()):
            print(f"  {problem.workload.jobs[jid].name:10s} {d:.4f}")
        return 0
    finally:
        # The profile must survive a failed or budget-stopped solve — a
        # partial profile is exactly what diagnoses the failure.
        if args.profile:
            print()
            print(problem.counters.report())
            if report is not None:
                solver_stats = {
                    k: v for k, v in report.result.stats.items()
                    if k != "profile"
                }
                if solver_stats:
                    print(f"  solver stats: {solver_stats}")
        if tracer is not None:
            tracer.close()
            print(f"trace: {tracer.events_written} events -> {args.trace}",
                  file=sys.stderr)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import bench, kernels

    if args.trajectory:
        rows = bench.trajectory(args.results_dir)
        if not rows:
            # An empty history is a fresh checkout, not an error: report
            # it plainly and point at the command that starts one.
            print(f"no bench history yet: no valid BENCH_*.json under "
                  f"{args.results_dir} (run `cosched bench --out "
                  f"{args.results_dir}/BENCH_<rev>.json` to start one)",
                  file=sys.stderr)
            return 0
        if args.out:
            import json

            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(rows, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"trajectory ({len(rows)} documents) -> {args.out}",
                  file=sys.stderr)
        print(bench.trajectory_markdown(rows))
        return 0
    if args.repeats is not None and args.repeats < 1:
        print("--repeats must be >= 1", file=sys.stderr)
        return 2
    info = kernels.backend_info()
    print(f"kernel backend: {kernels.active_backend()} "
          f"(provider {info['provider']})", file=sys.stderr)
    doc = bench.run_bench(
        smoke=args.smoke,
        repeats=args.repeats,
        results_dir=args.results_dir,
    )
    if args.out:
        bench.write_bench(doc, args.out)
        print(f"bench -> {args.out}", file=sys.stderr)
    else:
        import json

        print(json.dumps(doc, indent=2, sort_keys=True))
    micro = doc["micro"]
    for name in sorted(micro):
        case = micro[name]
        print(f"  {name:24s} numpy {case['numpy_ms']:8.3f}ms  "
              f"active {case['active_ms']:8.3f}ms  "
              f"x{case['speedup']:.2f}", file=sys.stderr)
    solve = doc["solve"]
    lat = solve["latency_ms"]
    print(f"  solve {solve['spec']} n={solve['n']}: "
          f"p50 {lat['p50']:.1f}ms  p90 {lat['p90']:.1f}ms  "
          f"{solve['nodes_per_sec']:.0f} nodes/s", file=sys.stderr)
    service = doc.get("service")
    if service:
        for point in service["points"]:
            print(f"  service {point['shards']} shard(s): "
                  f"{point['rps']:.1f} req/s "
                  f"({point['solves']} solves, "
                  f"{point['cache_hits']} hits, "
                  f"{point['coalesced']} coalesced)", file=sys.stderr)
        print(f"  service speedup at {service['points'][-1]['shards']} "
              f"shards: x{service['speedup_max_shards']:.2f}",
              file=sys.stderr)
    online = doc.get("online")
    if online:
        print(f"  online repair n={online['trace']['n']} "
              f"({online['trace']['events']} events): "
              f"x{online['amortized_speedup']:.2f} amortized, "
              f"mean regret {online['mean_regret']:.4f}, "
              f"never worse than greedy: "
              f"{online['never_worse_than_greedy']}", file=sys.stderr)
    evolve = doc.get("evolve")
    if evolve:
        for point in evolve["points"]:
            med = point["median"]
            print(f"  evolve n={point['n']} "
                  f"wall={point['wall_budget_s']}s: "
                  f"genetic {med['genetic']:.6f}  "
                  f"hill {med['hill']:.6f}  "
                  f"anneal {med['anneal']:.6f}  "
                  f"pg {med['pg']:.6f}", file=sys.stderr)
        print(f"  evolve flags: never_worse_than_pg="
              f"{evolve['genetic_never_worse_than_pg']} "
              f"beats_anneal={evolve['genetic_beats_anneal']} "
              f"beats_hill={evolve['genetic_beats_hill']}",
              file=sys.stderr)
    if doc["baseline"] is not None:
        base = doc["baseline"]
        print(f"  vs baseline {base['revision']}: "
              f"x{base['speedup_vs_baseline']:.2f}", file=sys.stderr)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .online import load_trace, replay_trace, synthetic_trace, write_trace

    if _parse_solver_spec(args.base) is None:
        return 2
    if args.trace_file:
        try:
            trace = load_trace(args.trace_file)
        except (OSError, ValueError) as exc:
            print(f"cannot load {args.trace_file}: {exc}", file=sys.stderr)
            return 2
    else:
        trace = synthetic_trace(args.n, events=args.events,
                                churn=args.churn, seed=args.seed)
    if args.save_trace:
        write_trace(trace, args.save_trace)
        print(f"trace ({len(trace['events'])} events) -> {args.save_trace}",
              file=sys.stderr)
    from .runtime import SpecError

    try:
        result = replay_trace(
            trace,
            base=args.base,
            escalate_threshold=args.escalate_threshold,
            saturation=args.saturation,
            cluster=args.cluster,
        )
    except SpecError as exc:
        print(f"bad --base {args.base!r} ({exc.reason}): {exc.detail}",
              file=sys.stderr)
        return 2
    if args.out:
        import json

        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"replay -> {args.out}", file=sys.stderr)
    if args.json:
        import json

        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    t = result["trace"]
    print(f"replayed {t['events']} events over n={t['n']} "
          f"(u={result['u']}, churn {t['churn']:.2f}, "
          f"base {result['specs']['full']!r})")
    print(f"{'event':>5} {'op':>7} {'repair ms':>10} {'full ms':>9} "
          f"{'speedup':>8} {'regret':>8} {'kept':>5}")
    for e in result["events"]:
        print(f"{e['event']:>5} {e['op']:>7} {e['repair_ms']:>10.1f} "
              f"{e['full_ms']:>9.1f} {e['speedup']:>8.2f} "
              f"{e['regret']:>8.4f} {e['machines_kept']:>5}"
              + ("  ESCALATED" if e["escalated"] else ""))
    print(f"\namortized speedup: x{result['amortized_speedup']:.2f} "
          f"({result['repair_total_ms']:.0f}ms repair vs "
          f"{result['full_total_ms']:.0f}ms full)")
    print(f"regret: mean {result['mean_regret']:.4f}  "
          f"max {result['max_regret']:.4f}")
    print(f"never worse than greedy: {result['never_worse_than_greedy']}  "
          f"escalations: {result['escalations']}")
    return 0 if result["never_worse_than_greedy"] else 1


def _cmd_graph(args: argparse.Namespace) -> int:
    spec = _parse_solver_spec(args.solver)
    if spec is None:
        return 2
    unknown = [a for a in args.apps if a not in CATALOG]
    if unknown:
        print(f"unknown program(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    from .graph.coschedule_graph import CoSchedulingGraph
    from .graph.visualize import ascii_levels, describe_path, to_dot

    problem = serial_mix(args.apps, cluster=args.cluster)
    graph = CoSchedulingGraph(problem)
    report = run_solve(problem, spec)
    if report.schedule is None:
        print("no schedule found", file=sys.stderr)
        return 1
    if args.dot:
        print(to_dot(graph, highlight=report.schedule))
        return 0
    print(ascii_levels(graph, highlight=report.schedule))
    print()
    print(describe_path(problem, report.schedule))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    from .sim import (
        FirstFitPlacement,
        LeastLoadedPlacement,
        LeastPressurePlacement,
        OnlineJob,
        simulate,
    )

    rng = np.random.default_rng(args.seed)
    jobs = []
    t = 0.0
    for i in range(args.jobs):
        t += float(rng.exponential(args.mean_interarrival))
        jobs.append(OnlineJob(
            name=f"job{i}", arrival=t,
            work=float(rng.uniform(4, 16)),
            pressure=float(rng.uniform(0.15, 0.75)),
        ))

    def contention(job, coset):
        return job.pressure * sum(o.pressure for o in coset)

    print(f"{args.jobs} jobs onto {args.machines} x {args.cores}-core "
          "machines\n")
    print(f"{'policy':>16} {'mean slowdown':>14} {'max':>8} {'makespan':>9}")
    for policy in (FirstFitPlacement(), LeastLoadedPlacement(),
                   LeastPressurePlacement()):
        fresh = [OnlineJob(j.name, j.arrival, j.work, j.pressure)
                 for j in jobs]
        res = simulate(fresh, args.machines, args.cores, policy,
                       degradation=contention)
        print(f"{policy.name:>16} {res.mean_slowdown:>14.3f} "
              f"{res.max_slowdown:>8.2f} {res.makespan:>9.1f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    shed = args.shed_solver or None
    stop = threading.Event()
    # SIGTERM (and Ctrl-C) triggers the graceful drain contract: stop
    # admitting (503 + Retry-After), finish everything in flight, exit.
    signal.signal(signal.SIGTERM, lambda *_: stop.set())

    tracer = None
    if args.trace:
        from .perf import Tracer

        tracer = Tracer(args.trace, flush_every=1)

    if args.shards > 0:
        from .service import ShardedService, start_dispatcher_server

        sharded = ShardedService(
            shards=args.shards,
            workers_per_shard=args.workers,
            max_queue=args.max_queue,
            default_solver=args.solver,
            store_path=args.store,
            store_capacity=args.store_capacity,
            shed_policy=shed,
            drain_timeout=args.drain_timeout,
            tracer=tracer,
        )
        server = start_dispatcher_server(sharded, host=args.host,
                                         port=args.port)
        print(f"cosched sharded tier on {server.url} "
              f"({args.shards} shards x {args.workers} workers, "
              f"default solver {args.solver!r}, shed policy {shed!r}; "
              "POST /solve, GET /status/<id>, GET /metrics, GET /health; "
              "SIGTERM drains)")
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        print("\ndraining sharded tier", file=sys.stderr)
        graceful = sharded.drain()
        server.shutdown()
        if tracer is not None:
            tracer.close()
        return 0 if graceful else 1

    from .service import SolutionStore, SolveService, start_http_server

    store = SolutionStore(capacity=args.store_capacity, path=args.store)
    service = SolveService(
        store=store,
        workers=args.workers,
        max_queue=args.max_queue,
        default_solver=args.solver,
        shed_policy=shed,
        tracer=tracer,
    )
    server = start_http_server(service, host=args.host, port=args.port)
    print(f"cosched service on {server.url} "
          f"({args.workers} workers, default solver {args.solver!r}; "
          "POST /solve, GET /status/<id>, GET /metrics; "
          "SIGTERM drains, Ctrl-C stops)")
    try:
        stop.wait()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    else:
        print("\ndraining", file=sys.stderr)
        service.drain(timeout=args.drain_timeout)
    server.shutdown()
    service.stop()
    store.close()
    if tracer is not None:
        tracer.close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import urllib.error

    from .service import ServiceClient, ServiceError, schedule_from_dict

    if args.solver is not None and _parse_solver_spec(args.solver) is None:
        return 2  # reject locally with the same registry the server uses
    problem, err = _load_or_mix_problem(args)
    if problem is None:
        return err
    budget = None
    if args.budget is not None:
        if args.budget <= 0:
            print("--budget must be positive seconds", file=sys.stderr)
            return 2
        budget = {"wall_time": args.budget}
    client = ServiceClient(args.url)
    try:
        status = client.solve(
            problem,
            solver=args.solver,
            budget=budget,
            priority=args.priority,
            refine=args.refine,
            timeout=args.timeout,
        )
    except ServiceError as exc:
        print(f"service refused the request: {exc}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, TimeoutError) as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    if status["state"] != "done":
        print(f"request failed: {status.get('error', status)}",
              file=sys.stderr)
        return 1
    schedule = schedule_from_dict(status["schedule"])
    print(schedule.pretty(problem.workload))
    print(f"\ndisposition: {status['disposition']}   "
          f"solved by: {status['solved_by']}   "
          f"warm start: {status['warm_started']}")
    print(f"total degradation: {status['objective']:.6f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cosched",
        description=(
            "Contention-aware co-scheduling (ICPP'15 reproduction): run the "
            "paper's experiments or solve ad-hoc instances."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments/solvers/programs")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run experiment(s) by id, or 'all'")
    p_run.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    p_run.set_defaults(func=_cmd_run)

    p_solve = sub.add_parser("solve", help="co-schedule catalog programs")
    p_solve.add_argument("apps", nargs="*", metavar="PROGRAM")
    p_solve.add_argument("--cluster", default="quad",
                         choices=("dual", "quad", "eight"))
    p_solve.add_argument(
        "--problem-file", default=None, metavar="FILE.json",
        help="solve a codec-serialized problem instead of catalog programs "
             "(see docs/SERVICE.md for the document schema)",
    )
    p_solve.add_argument(
        "--save-problem", default=None, metavar="FILE.json",
        help="export the instance as canonical JSON (and print its "
             "fingerprint) before solving, so the run is reproducible "
             "with --problem-file",
    )
    p_solve.add_argument(
        "--solver", default="oastar", metavar="SPEC",
        help="runtime registry solver spec, e.g. oastar, hastar?mer=4, "
             "fallback?chain=oastar,pg ('cosched list' shows the registry; "
             "docs/RUNTIME.md has the grammar)",
    )
    p_solve.add_argument(
        "--json", action="store_true",
        help="print the normalized SolveReport document (the same shape "
             "the HTTP service and sim.compare_solvers report) instead of "
             "the pretty schedule",
    )
    p_solve.add_argument(
        "--profile", action="store_true",
        help="print weight-kernel batch sizes, memo hits, heap ops and "
             "per-phase wall time after solving",
    )
    p_solve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="score expansion levels on N worker processes "
             "(search-based solvers only; 1 = in-process)",
    )
    p_solve.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-time budget: stop the solver at the deadline and print "
             "its best-so-far valid schedule (anytime mode; combine with "
             "--solver fallback for the OA* > HA* > PG cascade)",
    )
    p_solve.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write structured JSONL search events (expand/dismiss/"
             "incumbent/bound/fallback ...) to FILE; summarize with "
             "'python -m repro.analysis.trace_report FILE'",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_graph = sub.add_parser(
        "graph", help="render the co-scheduling graph (Fig. 3 style)"
    )
    p_graph.add_argument("apps", nargs="+", metavar="PROGRAM")
    p_graph.add_argument("--cluster", default="dual",
                         choices=("dual", "quad", "eight"))
    p_graph.add_argument(
        "--solver", default="oastar", metavar="SPEC",
        help="solver spec whose path to highlight (any registry spec; "
             "default oastar, i.e. the optimal path)",
    )
    p_graph.add_argument("--dot", action="store_true",
                         help="emit Graphviz DOT instead of ASCII")
    p_graph.set_defaults(func=_cmd_graph)

    p_bench = sub.add_parser(
        "bench", help="run the perf suite, emit a BENCH_*.json document",
    )
    p_bench.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny inputs, few repeats, same schema",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=None, metavar="N",
        help="end-to-end solve repetitions (default: 9, or 3 with --smoke)",
    )
    p_bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON document here instead of stdout",
    )
    p_bench.add_argument(
        "--results-dir", default="benchmarks/results", metavar="DIR",
        help="where committed BENCH_*.json documents live; the newest one "
             "for another revision becomes the speedup baseline",
    )
    p_bench.add_argument(
        "--trajectory", action="store_true",
        help="don't run anything: aggregate every committed BENCH_*.json "
             "in --results-dir into a cross-revision markdown table "
             "(--out additionally writes the rows as JSON)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_replay = sub.add_parser(
        "replay",
        help="replay an arrival trace through the incremental repair engine",
    )
    p_replay.add_argument(
        "--trace-file", default=None, metavar="FILE.json",
        help="replay this repro.trace document instead of synthesizing one "
             "(docs/ONLINE.md has the trace schema)",
    )
    p_replay.add_argument(
        "--n", type=int, default=32, metavar="N",
        help="initial roster size for a synthesized trace (default 32)",
    )
    p_replay.add_argument(
        "--events", type=int, default=None, metavar="N",
        help="number of churn events to synthesize "
             "(default: round(churn * n))",
    )
    p_replay.add_argument(
        "--churn", type=float, default=0.5, metavar="F",
        help="churn fraction for a synthesized trace (default 0.5)",
    )
    p_replay.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="RNG seed for a synthesized trace",
    )
    p_replay.add_argument(
        "--save-trace", default=None, metavar="FILE.json",
        help="write the (possibly synthesized) trace before replaying, so "
             "the run is reproducible with --trace-file",
    )
    p_replay.add_argument(
        "--base", default="hastar", metavar="SPEC",
        help="base solver spec: the repair path runs repair?base=SPEC, the "
             "full-solve baseline runs SPEC from scratch per event",
    )
    p_replay.add_argument(
        "--escalate-threshold", type=float, default=0.5, metavar="F",
        help="perturbed-process fraction above which repair escalates to a "
             "full warm-started re-solve (default 0.5)",
    )
    p_replay.add_argument(
        "--saturation", type=float, default=None, metavar="S",
        help="pressure-model saturation cap (default: uncapped; the "
             "committed bench uses 4.0)",
    )
    p_replay.add_argument("--cluster", default="quad",
                          choices=("dual", "quad", "eight"))
    p_replay.add_argument(
        "--out", default=None, metavar="FILE.json",
        help="write the full replay result document here",
    )
    p_replay.add_argument(
        "--json", action="store_true",
        help="print the replay result document instead of the event table",
    )
    p_replay.set_defaults(func=_cmd_replay)

    p_sim = sub.add_parser("simulate", help="online placement-policy race")
    p_sim.add_argument("--jobs", type=int, default=60)
    p_sim.add_argument("--machines", type=int, default=4)
    p_sim.add_argument("--cores", type=int, default=4)
    p_sim.add_argument("--mean-interarrival", type=float, default=0.5)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_serve = sub.add_parser(
        "serve", help="run the memoizing co-scheduling HTTP service"
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8831,
                         help="bind port; 0 picks an ephemeral port")
    p_serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="solver worker threads draining the request queue",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="bound on queued requests; beyond it submissions are "
             "rejected with reason 'queue_full'",
    )
    p_serve.add_argument(
        "--solver", default="fallback", metavar="SPEC",
        help="default solver spec for requests that name none "
             "(validated against the runtime registry)",
    )
    p_serve.add_argument(
        "--store", default=None, metavar="FILE.jsonl",
        help="persist the solution store to a JSONL file (replayed on "
             "restart, so the memo survives)",
    )
    p_serve.add_argument(
        "--store-capacity", type=int, default=1024, metavar="N",
        help="in-memory LRU capacity of the solution store",
    )
    p_serve.add_argument(
        "--trace", default=None, metavar="FILE",
        help="stream svc_* + solver JSONL events to FILE; summarize with "
             "'python -m repro.analysis.trace_report FILE'",
    )
    p_serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the multi-process tier: N shard worker processes behind "
             "a fingerprint-routing dispatcher (0 = single process; see "
             "docs/DEPLOYMENT.md)",
    )
    p_serve.add_argument(
        "--shed-solver", default="pg", metavar="SPEC",
        help="cheap non-exact solver chain used to degrade (not reject) "
             "requests when a queue saturates or a shard dies; empty "
             "string disables shedding",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="how long a SIGTERM-triggered drain waits for in-flight "
             "solves before forcing shutdown",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one problem to a running cosched service"
    )
    p_submit.add_argument("apps", nargs="*", metavar="PROGRAM")
    p_submit.add_argument("--url", default="http://127.0.0.1:8831",
                          help="service base URL")
    p_submit.add_argument("--cluster", default="quad",
                          choices=("dual", "quad", "eight"))
    p_submit.add_argument(
        "--problem-file", default=None, metavar="FILE.json",
        help="submit a codec-serialized problem instead of catalog programs",
    )
    p_submit.add_argument(
        "--solver", default=None, metavar="SPEC",
        help="solver spec to request (server default when omitted); the "
             "service validates it against the same runtime registry",
    )
    p_submit.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-time budget to request for the solve",
    )
    p_submit.add_argument(
        "--priority", type=int, default=1, metavar="N",
        help="priority lane (lower is served first; 0 = interactive)",
    )
    p_submit.add_argument(
        "--refine", action="store_true",
        help="skip the cache for non-optimal entries and re-solve with "
             "the cached schedule as a warm start",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="give up waiting for the ticket after this long",
    )
    p_submit.set_defaults(func=_cmd_submit)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
