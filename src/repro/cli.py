"""Command-line interface.

    cosched list                      # available experiments
    cosched run table1 [table3 ...]   # run experiments, print their tables
    cosched run all
    cosched solve --cluster quad BT CG EP FT IS LU MG SP
    cosched solve --solver hastar --cluster eight <apps...>
    cosched solve --budget 5 --trace solve.jsonl <apps...>   # anytime + trace
    cosched graph --cluster dual BT CG EP FT IS LU     # Fig. 3-style view
    cosched simulate --jobs 60 --machines 4            # online policies

``solve`` co-schedules named catalog programs and prints the schedule plus
its degradation breakdown; ``--budget SECONDS`` makes it anytime (best
valid schedule at the deadline, ``--solver fallback`` cascades
OA* > HA* > PG), ``--trace FILE`` streams JSONL search events, and
``--profile`` prints the perf-counter report even when the solve fails.
``graph`` renders the co-scheduling graph with the optimal path
highlighted; ``simulate`` races online placement policies on a random
arrival trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .experiments import REGISTRY
from .solvers import (
    Budget,
    FallbackChain,
    HAStar,
    OAStar,
    OSVP,
    PolitenessGreedy,
    ScipyMILP,
)
from .workloads.catalog import CATALOG
from .workloads.mixes import serial_mix

SOLVERS = {
    "oastar": lambda: OAStar(),
    "hastar": lambda: HAStar(),
    "osvp": lambda: OSVP(),
    "pg": lambda: PolitenessGreedy(),
    "ip": lambda: ScipyMILP(),
    "fallback": lambda: FallbackChain(),
}


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in REGISTRY:
        print(f"  {name}")
    print("\nsolvers:", ", ".join(SOLVERS))
    print("catalog programs:", ", ".join(sorted(CATALOG)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names: List[str] = args.experiments
    if names == ["all"]:
        names = list(REGISTRY)
    unknown = [n for n in names if n not in REGISTRY]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(REGISTRY)}", file=sys.stderr)
        return 2
    for name in names:
        result = REGISTRY[name]()
        print(f"\n== {result.exp_id}: {result.title} ==")
        print(result.text)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    unknown = [a for a in args.apps if a not in CATALOG]
    if unknown:
        print(f"unknown program(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(CATALOG))}", file=sys.stderr)
        return 2
    problem = serial_mix(args.apps, cluster=args.cluster)
    solver = SOLVERS[args.solver]()
    if getattr(args, "workers", 1) > 1 and hasattr(solver, "parallel_workers"):
        solver.parallel_workers = args.workers
    budget = None
    if args.budget is not None:
        if args.budget <= 0:
            print("--budget must be positive seconds", file=sys.stderr)
            return 2
        budget = Budget(wall_time=args.budget)
    tracer = None
    if args.trace:
        from .perf import Tracer

        tracer = Tracer(args.trace)
        problem.counters.tracer = tracer
    result = None
    try:
        result = solver.solve(problem, budget=budget)
        if result.schedule is None:
            reason = result.budget_stopped or "no schedule found"
            print(f"no schedule ({reason})", file=sys.stderr)
            return 1
        print(result.schedule.pretty(problem.workload))
        print(f"\nsolver: {result.solver}   time: {result.time_seconds:.4f}s")
        if result.budget_stopped is not None:
            print(f"budget: stopped on {result.budget_stopped} "
                  f"(best-so-far schedule, not proven optimal)")
        print(f"total degradation: {result.objective:.6f}")
        print(
            "average degradation: "
            f"{result.evaluation.average_job_degradation:.6f}"
        )
        for jid, d in sorted(result.evaluation.job_degradations.items()):
            print(f"  {problem.workload.jobs[jid].name:10s} {d:.4f}")
        return 0
    finally:
        # The profile must survive a failed or budget-stopped solve — a
        # partial profile is exactly what diagnoses the failure.
        if args.profile:
            print()
            print(problem.counters.report())
            if result is not None:
                solver_stats = {
                    k: v for k, v in result.stats.items() if k != "profile"
                }
                if solver_stats:
                    print(f"  solver stats: {solver_stats}")
        if tracer is not None:
            problem.counters.tracer = None
            tracer.close()
            print(f"trace: {tracer.events_written} events -> {args.trace}",
                  file=sys.stderr)


def _cmd_graph(args: argparse.Namespace) -> int:
    unknown = [a for a in args.apps if a not in CATALOG]
    if unknown:
        print(f"unknown program(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    from .graph.coschedule_graph import CoSchedulingGraph
    from .graph.visualize import ascii_levels, describe_path, to_dot

    problem = serial_mix(args.apps, cluster=args.cluster)
    graph = CoSchedulingGraph(problem)
    result = SOLVERS["oastar"]().solve(problem)
    if args.dot:
        print(to_dot(graph, highlight=result.schedule))
        return 0
    print(ascii_levels(graph, highlight=result.schedule))
    print()
    print(describe_path(problem, result.schedule))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    from .sim import (
        FirstFitPlacement,
        LeastLoadedPlacement,
        LeastPressurePlacement,
        OnlineJob,
        simulate,
    )

    rng = np.random.default_rng(args.seed)
    jobs = []
    t = 0.0
    for i in range(args.jobs):
        t += float(rng.exponential(args.mean_interarrival))
        jobs.append(OnlineJob(
            name=f"job{i}", arrival=t,
            work=float(rng.uniform(4, 16)),
            pressure=float(rng.uniform(0.15, 0.75)),
        ))

    def contention(job, coset):
        return job.pressure * sum(o.pressure for o in coset)

    print(f"{args.jobs} jobs onto {args.machines} x {args.cores}-core "
          "machines\n")
    print(f"{'policy':>16} {'mean slowdown':>14} {'max':>8} {'makespan':>9}")
    for policy in (FirstFitPlacement(), LeastLoadedPlacement(),
                   LeastPressurePlacement()):
        fresh = [OnlineJob(j.name, j.arrival, j.work, j.pressure)
                 for j in jobs]
        res = simulate(fresh, args.machines, args.cores, policy,
                       degradation=contention)
        print(f"{policy.name:>16} {res.mean_slowdown:>14.3f} "
              f"{res.max_slowdown:>8.2f} {res.makespan:>9.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cosched",
        description=(
            "Contention-aware co-scheduling (ICPP'15 reproduction): run the "
            "paper's experiments or solve ad-hoc instances."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list experiments/solvers/programs")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run experiment(s) by id, or 'all'")
    p_run.add_argument("experiments", nargs="+", metavar="EXPERIMENT")
    p_run.set_defaults(func=_cmd_run)

    p_solve = sub.add_parser("solve", help="co-schedule catalog programs")
    p_solve.add_argument("apps", nargs="+", metavar="PROGRAM")
    p_solve.add_argument("--cluster", default="quad",
                         choices=("dual", "quad", "eight"))
    p_solve.add_argument("--solver", default="oastar", choices=tuple(SOLVERS))
    p_solve.add_argument(
        "--profile", action="store_true",
        help="print weight-kernel batch sizes, memo hits, heap ops and "
             "per-phase wall time after solving",
    )
    p_solve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="score expansion levels on N worker processes "
             "(search-based solvers only; 1 = in-process)",
    )
    p_solve.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-time budget: stop the solver at the deadline and print "
             "its best-so-far valid schedule (anytime mode; combine with "
             "--solver fallback for the OA* > HA* > PG cascade)",
    )
    p_solve.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write structured JSONL search events (expand/dismiss/"
             "incumbent/bound/fallback ...) to FILE; summarize with "
             "'python -m repro.analysis.trace_report FILE'",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_graph = sub.add_parser(
        "graph", help="render the co-scheduling graph (Fig. 3 style)"
    )
    p_graph.add_argument("apps", nargs="+", metavar="PROGRAM")
    p_graph.add_argument("--cluster", default="dual",
                         choices=("dual", "quad", "eight"))
    p_graph.add_argument("--dot", action="store_true",
                         help="emit Graphviz DOT instead of ASCII")
    p_graph.set_defaults(func=_cmd_graph)

    p_sim = sub.add_parser("simulate", help="online placement-policy race")
    p_sim.add_argument("--jobs", type=int, default=60)
    p_sim.add_argument("--machines", type=int, default=4)
    p_sim.add_argument("--cores", type=int, default=4)
    p_sim.add_argument("--mean-interarrival", type=float, default=0.5)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
